//! Kernel generation: model expressions → executable tapes.
//!
//! Produces the four compute kernels of Algorithm 1 — φ-full, φ-split,
//! µ-full, µ-split — by driving the discretization (full inline vs.
//! staggered-flux extraction) and the IR pipeline. "Each kernel can
//! optionally be split into two parts to prevent re-computation of
//! staggered values" (§4.2).

use crate::model::{build_model, ModelExprs, ModelFields};
use crate::params::ModelParams;
use pf_analyze::{analyze, check_split_disjoint, AnalyzeOptions, FieldAlloc, SuiteReport};
use pf_ir::{generate, GenOptions, Tape};
use pf_stencil::{discretize_full, split_fluxes, Discretization, StencilKernel};
use pf_symbolic::Field;

/// The split variant of one kernel: face (flux) tapes plus the update tape.
#[derive(Clone, Debug)]
pub struct SplitTapes {
    /// One face kernel per direction (iter_extent = 1 along its direction).
    pub flux_tapes: Vec<Tape>,
    pub update: Tape,
    /// Symbolic handle of the staggered temporary (bind an array of shape
    /// `block + 1` per dimension, no ghosts).
    pub stag_field: Field,
    pub slots: usize,
}

/// All generated kernels for one model instance.
#[derive(Clone, Debug)]
pub struct KernelSet {
    pub fields: ModelFields,
    pub phi_full: Tape,
    pub mu_full: Tape,
    pub phi_split: SplitTapes,
    pub mu_split: SplitTapes,
}

fn full_kernel(
    name: &str,
    disc: &Discretization,
    updates: &[(pf_symbolic::Access, pf_symbolic::Expr)],
    opts: &GenOptions,
) -> Tape {
    let assignments = discretize_full(disc, updates);
    let k = StencilKernel::new(name, assignments);
    generate(&k, opts)
}

fn split_kernel(
    name: &str,
    disc: &Discretization,
    updates: &[(pf_symbolic::Access, pf_symbolic::Expr)],
    opts: &GenOptions,
) -> SplitTapes {
    let r = split_fluxes(disc, &format!("{name}_stag"), updates);
    let flux_tapes = r.flux_kernels.iter().map(|k| generate(k, opts)).collect();
    let mut uk = StencilKernel::new(&format!("{name}_update"), r.updates);
    uk.iter_extent = [0, 0, 0];
    SplitTapes {
        flux_tapes,
        update: generate(&uk, opts),
        stag_field: r.stag_field,
        slots: r.slots.len().max(1),
    }
}

/// Generate all four kernels for a model.
pub fn generate_kernels(p: &ModelParams, opts: &GenOptions) -> KernelSet {
    let m: ModelExprs = build_model(p);
    generate_kernels_from(p, &m, opts)
}

/// Generate kernels from pre-built model expressions (lets callers modify
/// the PDE layer first — the paper's "user can extend the description on
/// each level").
pub fn generate_kernels_from(p: &ModelParams, m: &ModelExprs, opts: &GenOptions) -> KernelSet {
    // From here on, every tape the pipeline produces passes through the
    // pf-analyze SSA/value verifier (subject to PF_VERIFY).
    pf_analyze::install_pipeline_verifier();
    let disc = Discretization::new(p.dim, [p.dx; 3]);
    let mut ks = KernelSet {
        fields: m.fields,
        phi_full: full_kernel("phi_full", &disc, &m.phi_updates, opts),
        mu_full: full_kernel("mu_full", &disc, &m.mu_updates, opts),
        phi_split: split_kernel("phi", &disc, &m.phi_updates, opts),
        mu_split: split_kernel("mu", &disc, &m.mu_updates, opts),
    };
    stamp_range_contracts(&mut ks);
    if pf_ir::verify_enabled() {
        let suite = verify_kernel_set(p, &ks);
        if let Some(errs) = suite.errors_rendered() {
            panic!(
                "kernel set for model '{}' failed verification:\n{errs}",
                p.name
            );
        }
        suite.record_trace();
    }
    ks
}

/// The value-range contract a kernel may assume when *loading* `f`, used
/// to seed pf-analyze's interval dataflow (pass 6).
///
/// * φ fields are simplex coordinates: each component lies in [0, 1].
///   Valid for loads of both generations — µ kernels read `phi_dst` only
///   after the simplex projection re-normalizes it, and φ kernels only
///   *store* `phi_dst` (stores carry no contract: the pre-projection raw
///   update may briefly leave the simplex).
/// * µ fields are chemical potentials; physically bounded but with no
///   hard invariant, so the contract is a deliberately loose ±10³ — wide
///   enough that no correct model violates it, finite enough that the
///   interval pass can prove `exp`/product terms stay finite.
/// * Staggered flux temporaries carry no contract.
pub fn field_contract(fields: &ModelFields, f: &Field) -> Option<(f64, f64)> {
    if *f == fields.phi_src || *f == fields.phi_dst {
        Some((0.0, 1.0))
    } else if *f == fields.mu_src || *f == fields.mu_dst {
        Some((-1e3, 1e3))
    } else {
        None
    }
}

fn all_tapes_mut(ks: &mut KernelSet) -> Vec<&mut Tape> {
    let mut tapes: Vec<&mut Tape> = vec![&mut ks.phi_full, &mut ks.mu_full];
    for split in [&mut ks.phi_split, &mut ks.mu_split] {
        tapes.extend(split.flux_tapes.iter_mut());
        tapes.push(&mut split.update);
    }
    tapes
}

/// Stamp [`field_contract`] ranges onto every tape's `field_ranges`
/// metadata (parallel to its field table). Analysis-only: the ranges are
/// excluded from `Tape::structural_hash`, so stamping cannot invalidate
/// native-code or plan caches.
fn stamp_range_contracts(ks: &mut KernelSet) {
    let fields = ks.fields;
    for tape in all_tapes_mut(ks) {
        tape.field_ranges = tape
            .fields
            .iter()
            .map(|f| field_contract(&fields, f))
            .collect();
    }
}

/// Allocation table for `tape`, mirroring what `Simulation::new` (and the
/// bench harness) actually allocate: cell-centred fields carry
/// [`pf_grid::GHOST_LAYERS`] ghost layers; staggered flux temporaries have
/// no ghosts but one pad cell along each swept dimension.
pub(crate) fn alloc_table(p: &ModelParams, ks: &KernelSet, tape: &Tape) -> Vec<FieldAlloc> {
    let stag = [ks.phi_split.stag_field, ks.mu_split.stag_field];
    tape.fields
        .iter()
        .map(|f| {
            if stag.contains(f) {
                let mut pad = [0usize; 3];
                for d in pad.iter_mut().take(p.dim) {
                    *d = 1;
                }
                FieldAlloc { ghost: 0, pad }
            } else {
                FieldAlloc::ghosted(pf_grid::GHOST_LAYERS)
            }
        })
        .collect()
}

/// Ghost-layer width the kernel set's loads of exchanged (cell-centred)
/// fields require — what a halo exchange must provide. Staggered
/// temporaries are block-local and excluded.
pub fn required_halo_width(ks: &KernelSet) -> usize {
    let stag = [ks.phi_split.stag_field, ks.mu_split.stag_field];
    let tapes = all_tapes(ks);
    let mut width = 0;
    for tape in tapes {
        let fp = pf_analyze::Footprint::of(tape);
        for (slot, f) in tape.fields.iter().enumerate() {
            if stag.contains(f) {
                continue;
            }
            width = width.max(fp.required_ghost(slot, [0; 3]));
        }
    }
    width
}

fn all_tapes(ks: &KernelSet) -> Vec<&Tape> {
    let mut tapes: Vec<&Tape> = vec![&ks.phi_full, &ks.mu_full];
    for split in [&ks.phi_split, &ks.mu_split] {
        tapes.extend(split.flux_tapes.iter());
        tapes.push(&split.update);
    }
    tapes
}

/// Run the full pf-analyze suite (SSA, halo fit against the real
/// allocation shapes, intra-sweep hazards, value lints, contract-seeded
/// interval dataflow, split-group store disjointness) over every kernel
/// of `ks`.
pub fn verify_kernel_set(p: &ModelParams, ks: &KernelSet) -> SuiteReport {
    let mut suite = SuiteReport::default();
    for tape in all_tapes(ks) {
        let opts = AnalyzeOptions {
            allocs: Some(alloc_table(p, ks, tape)),
            hazards: true,
            seeded_rng: true,
            intervals: true,
        };
        suite.push(analyze(tape, &opts));
    }
    for split in [&ks.phi_split, &ks.mu_split] {
        let group: Vec<&Tape> = split
            .flux_tapes
            .iter()
            .chain(std::iter::once(&split.update))
            .collect();
        suite.group_diagnostics.extend(check_split_disjoint(&group));
    }
    suite
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::params::{p1, ModelParams, TempModel};

    /// A minimal 2-phase / 2-component 2D model so unit tests stay fast;
    /// the full P1/P2 generations are exercised by integration tests.
    pub fn mini_model() -> ModelParams {
        ModelParams {
            name: "mini".into(),
            phases: 2,
            components: 2,
            dim: 2,
            dx: 1.0,
            dt: 0.01,
            eps: 3.0,
            gamma: vec![vec![0.0, 0.4], vec![0.4, 0.0]],
            gamma_third: 0.0,
            tau: vec![vec![0.0, 1.0], vec![1.0, 0.0]],
            diffusivity: vec![1.0, 0.1],
            a_coeff: vec![vec![-0.5], vec![-0.5]],
            // Solid (phase 1) has the lower grand potential at µ > 0, so a
            // positive chemical potential drives solidification; at µ = 0
            // the bulk potentials are equal (pure curvature flow).
            b_coeff: vec![vec![(0.0, 0.05)], vec![(-0.3, 0.05)]],
            c_coeff: vec![(0.01, 0.0), (0.01, 0.0)],
            anisotropy: None,
            orientation: vec![0.0, 0.0],
            temperature: TempModel {
                t0: 1.0,
                gradient: 0.0,
                velocity: 0.0,
            },
            fluctuation_amplitude: 0.0,
            liquid_phase: 0,
            antitrapping: true,
            eta: 1e-9,
        }
    }

    #[test]
    fn mini_kernels_generate_and_have_stores() {
        let ks = generate_kernels(&mini_model(), &GenOptions::default());
        assert!(ks.phi_full.stores().count() == 2);
        assert!(ks.mu_full.stores().count() == 1);
        assert!(!ks.phi_split.flux_tapes.is_empty());
        assert!(ks.mu_split.slots >= 2, "one flux slot per direction");
    }

    #[test]
    fn split_flux_tapes_iterate_extended_ranges() {
        let ks = generate_kernels(&mini_model(), &GenOptions::default());
        for (d, t) in ks.mu_split.flux_tapes.iter().enumerate() {
            let mut expect = [0usize; 3];
            expect[d] = 1;
            assert_eq!(t.iter_extent, expect);
        }
    }

    #[test]
    fn mu_kernel_reads_both_phi_generations() {
        let ks = generate_kernels(&mini_model(), &GenOptions::default());
        let fields: Vec<_> = ks.mu_full.fields.clone();
        assert!(fields.contains(&ks.fields.phi_src));
        assert!(fields.contains(&ks.fields.phi_dst));
        assert!(fields.contains(&ks.fields.mu_src));
    }

    #[test]
    fn split_update_is_smaller_than_full() {
        // The whole point of splitting: the update pass re-reads cached
        // staggered values instead of recomputing them.
        let ks = generate_kernels(&mini_model(), &GenOptions::default());
        assert!(
            ks.mu_split.update.instrs.len() < ks.mu_full.instrs.len(),
            "{} vs {}",
            ks.mu_split.update.instrs.len(),
            ks.mu_full.instrs.len()
        );
    }

    #[test]
    #[ignore = "heavy symbolic generation; run with --ignored or the integration suite"]
    fn p1_kernels_generate() {
        let ks = generate_kernels(&p1(), &GenOptions::default());
        assert_eq!(ks.phi_full.stores().count(), 4);
        assert_eq!(ks.mu_full.stores().count(), 2);
    }
}
