//! Distributed-memory simulation driver (§4).
//!
//! Runs Algorithm 1 across ranks: each rank owns one block of the
//! decomposed domain, halo exchanges replace the single-block boundary
//! handling, and non-periodic physical boundaries are applied only where a
//! block touches the domain edge. The result is bit-identical to the
//! single-block run on the same global domain (asserted by the integration
//! tests), because the kernels, Philox counters, and coordinates are all
//! keyed on *global* cell indices.

use crate::checkpoint::{self, RankMeta};
use crate::kernels::KernelSet;
use crate::params::ModelParams;
use crate::sim::{BcKind, SimConfig, Simulation, Variant};
use pf_grid::{
    begin_exchange, exchange_halo, finish_exchange, run_ranks_with_faults, split_frontier,
    with_silenced_dead_rank_panics, Comm, CommOptions, Decomposition, FaultPlan, HaloHandle,
    DEAD_RANK_MARKER,
};
use pf_ir::Tape;
use pf_symbolic::Field;
use std::path::PathBuf;
use std::sync::Arc;

/// Periodic/final checkpointing of a distributed run.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Root directory of the per-step checkpoint sets.
    pub dir: PathBuf,
    /// Write a set every `every` steps (0 = periodic checkpoints off).
    pub every: u64,
    /// Also write a set after the last step.
    pub final_checkpoint: bool,
    /// Before stepping, restore from the newest complete set under `dir`
    /// (start from the initial conditions if there is none).
    pub resume: bool,
    /// Write dirty-row increments ([`checkpoint::save_incremental`])
    /// instead of full snapshots whenever a base exists, falling back to a
    /// full snapshot every `full_every` increments.
    pub incremental: bool,
    /// Consecutive increments allowed before the next write is forced to
    /// be a full snapshot, bounding restore-chain length.
    pub full_every: u64,
}

impl CheckpointConfig {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            every: 0,
            final_checkpoint: true,
            resume: false,
            incremental: true,
            full_every: 4,
        }
    }

    pub fn every(mut self, steps: u64) -> Self {
        self.every = steps;
        self
    }

    pub fn resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    pub fn incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self
    }

    pub fn full_every(mut self, n: u64) -> Self {
        self.full_every = n;
        self
    }
}

/// Distributed run configuration.
#[derive(Clone, Debug)]
pub struct DistConfig {
    pub global: [usize; 3],
    pub ranks: usize,
    pub bc: [BcKind; 3],
    pub phi_variant: Variant,
    pub mu_variant: Variant,
    pub comm: CommOptions,
    pub seed: u32,
    pub checkpoint: Option<CheckpointConfig>,
    /// Message-fault/rank-kill injection for the whole world.
    pub faults: Option<FaultPlan>,
    /// Execution engine for every rank's kernels; `None` keeps each block's
    /// shape-based default. The engine is not part of the persistent state
    /// (all engines are bitwise identical), so a checkpointed run may
    /// resume under a different one.
    pub exec_mode: Option<pf_backend::ExecMode>,
    /// When `exec_mode` is `None`, consult the on-disk tuning cache
    /// ([`crate::tune::tuned_exec_mode`]) for each rank's block shape and
    /// run the measured-fastest engine on a warm hit. Engine-only — the
    /// bitwise-neutral knob — so a cache state can change speed but never
    /// results; `PF_TUNE=off` or a cold cache keeps the shape default.
    pub tune_exec: bool,
    /// Hierarchical (node × socket) decomposition: split `ranks` into
    /// `ranks / ranks_per_node` nodes refined by `ranks_per_node` ranks
    /// each ([`Decomposition::hierarchical`]). `None` keeps the flat
    /// surface-optimal grid. Mapping-only — the flat process grid is the
    /// product of both levels, so results stay bitwise identical.
    pub ranks_per_node: Option<usize>,
}

impl DistConfig {
    pub fn new(global: [usize; 3], ranks: usize) -> Self {
        DistConfig {
            global,
            ranks,
            bc: [BcKind::Periodic; 3],
            phi_variant: Variant::Full,
            mu_variant: Variant::Split,
            comm: CommOptions::default(),
            seed: 42,
            checkpoint: None,
            faults: None,
            exec_mode: None,
            tune_exec: true,
            ranks_per_node: None,
        }
    }

    /// The decomposition this configuration runs under: hierarchical when
    /// `ranks_per_node` is set, flat otherwise.
    pub fn decomposition(&self) -> Decomposition {
        match self.ranks_per_node {
            Some(rpn) => {
                assert!(
                    rpn >= 1 && self.ranks.is_multiple_of(rpn),
                    "{} ranks cannot split into nodes of {rpn}",
                    self.ranks
                );
                Decomposition::hierarchical(self.global, self.ranks / rpn, rpn, self.periodic())
            }
            None => Decomposition::new(self.global, self.ranks, self.periodic()),
        }
    }

    /// This run's block metadata for `rank`, as stamped into checkpoints.
    pub fn rank_meta(&self, dec: &Decomposition, rank: usize) -> RankMeta {
        RankMeta {
            rank: rank as u32,
            nranks: self.ranks as u32,
            grid: [dec.grid[0] as u32, dec.grid[1] as u32, dec.grid[2] as u32],
            global: [
                self.global[0] as u64,
                self.global[1] as u64,
                self.global[2] as u64,
            ],
        }
    }

    fn periodic(&self) -> [bool; 3] {
        [
            self.bc[0] == BcKind::Periodic,
            self.bc[1] == BcKind::Periodic,
            self.bc[2] == BcKind::Periodic,
        ]
    }
}

/// Frontier deferral widths of one kernel phase of Algorithm 1: how many
/// cells from each block face must wait for the halo receives. Derived
/// from the pf-analyze load envelopes, maximized over the phase's tapes
/// (exact for a full kernel; for a split kernel the group maximum also
/// guarantees the flux interior produces every staggered value the update
/// interior re-reads, since the update's widths dominate the fluxes').
#[derive(Clone, Copy, Debug)]
struct PhaseWidths {
    lo: [usize; 3],
    hi: [usize; 3],
}

/// Interior/frontier split of the overlapped schedule, built once per run
/// and proved sound by [`pf_analyze::check_frontier`]: no interior cell of
/// any tape reads a ghost layer, so the interior sweeps can run while the
/// halo messages are still in flight.
#[derive(Clone, Copy, Debug)]
pub(crate) struct OverlapPlan {
    phi: PhaseWidths,
    mu: PhaseWidths,
}

fn phase_widths(p: &ModelParams, ks: &KernelSet, tapes: &[&Tape]) -> PhaseWidths {
    let mut lo = [0usize; 3];
    let mut hi = [0usize; 3];
    for tape in tapes {
        let allocs = crate::kernels::alloc_table(p, ks, tape);
        let (tl, th) = pf_analyze::frontier_widths(tape, &allocs);
        for d in 0..3 {
            lo[d] = lo[d].max(tl[d]);
            hi[d] = hi[d].max(th[d]);
        }
    }
    // Soundness re-check of the widths just derived. This is proven
    // statically ahead of time — pf-lint and the kernel-set verification
    // run `check_frontier` (and the symbolic protocol model) over every
    // configuration — so at runtime it is redundant and kept only as a
    // debug assertion guarding future refactors of the width derivation.
    if cfg!(debug_assertions) {
        for tape in tapes {
            let allocs = crate::kernels::alloc_table(p, ks, tape);
            let diags = pf_analyze::check_frontier(tape, &allocs, lo, hi);
            assert!(
                diags.is_empty(),
                "overlap plan unsound for kernel '{}': {}",
                tape.name,
                diags
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            );
        }
    }
    PhaseWidths { lo, hi }
}

fn split_refs(s: &crate::kernels::SplitTapes) -> Vec<&Tape> {
    s.flux_tapes
        .iter()
        .chain(std::iter::once(&s.update))
        .collect()
}

/// The phase's tapes by variant, borrowed from the kernel set.
fn variant_tapes(ks: &KernelSet, variant: Variant, phi: bool) -> Vec<&Tape> {
    match (variant, phi) {
        (Variant::Full, true) => vec![&ks.phi_full],
        (Variant::Full, false) => vec![&ks.mu_full],
        (Variant::Split, true) => split_refs(&ks.phi_split),
        (Variant::Split, false) => split_refs(&ks.mu_split),
    }
}

/// Exchanged (cell-centred) fields a phase's tapes load with nonzero ghost
/// reach, and the exchanged fields they store — the inputs of the
/// stale-ghost state machine. Staggered flux temporaries are block-local
/// (never exchanged) and excluded from both.
fn phase_comm_footprint(ks: &KernelSet, tapes: &[&Tape]) -> (Vec<String>, Vec<String>) {
    let stag = [ks.phi_split.stag_field, ks.mu_split.stag_field];
    let mut ghost_reads = std::collections::BTreeSet::new();
    let mut writes = std::collections::BTreeSet::new();
    for tape in tapes {
        let fp = pf_analyze::Footprint::of(tape);
        for (slot, f) in tape.fields.iter().enumerate() {
            if stag.contains(f) {
                continue;
            }
            if fp.required_ghost(slot, [0; 3]) > 0 {
                ghost_reads.insert(f.name());
            }
            if fp.per_field[slot].stores.is_some() {
                writes.insert(f.name());
            }
        }
    }
    (
        ghost_reads.into_iter().collect(),
        writes.into_iter().collect(),
    )
}

/// Lift [`dist_step_overlapped`]'s schedule into pf-analyze's symbolic
/// protocol model for one divided-pattern. The event list mirrors the
/// runtime schedule line by line — same exchange order, same epoch
/// offsets, same field tags — with the sweeps' communication footprints
/// derived from the real tapes' load/store envelopes. `check_protocol`
/// over this model proves send/recv pairing, epoch/tag discipline,
/// deadlock-freedom and stale-ghost-freedom for *any* rank count with the
/// given pattern of divided dimensions (see pf-analyze's protocol docs for
/// why the pattern, not the rank count, is the protocol's only degree of
/// freedom).
pub fn overlap_protocol_model(
    ks: &KernelSet,
    phi_variant: Variant,
    mu_variant: Variant,
    dims: [pf_analyze::DimClass; 3],
) -> pf_analyze::ProtocolModel {
    use pf_analyze::ProtoEvent as E;
    let f = ks.fields;
    let (phi_reads, phi_writes) = phase_comm_footprint(ks, &variant_tapes(ks, phi_variant, true));
    let (mu_reads, mu_writes) = phase_comm_footprint(ks, &variant_tapes(ks, mu_variant, false));
    let begin = |field: pf_symbolic::Field, tag: u16, epoch: u64| E::Begin {
        field: field.name(),
        field_tag: tag,
        epoch,
    };
    let finish = |field: pf_symbolic::Field| E::Finish {
        field: field.name(),
    };
    let divided: Vec<String> = (0..3)
        .filter(|&d| dims[d].divided)
        .map(|d| d.to_string())
        .collect();
    pf_analyze::ProtocolModel {
        name: format!("dist_step_overlapped[div={}]", divided.join("")),
        dims,
        // dist_step_overlapped consumes epochs step*4 .. step*4+2.
        epoch_stride: 4,
        events: vec![
            begin(f.phi_src, 0, 0),
            begin(f.mu_src, 1, 1),
            E::Interior {
                writes: phi_writes.clone(),
            },
            finish(f.phi_src),
            finish(f.mu_src),
            E::Frontier {
                ghost_reads: phi_reads,
                writes: phi_writes,
            },
            E::Write {
                field: f.phi_dst.name(),
            },
            begin(f.phi_dst, 2, 2),
            E::Interior {
                writes: mu_writes.clone(),
            },
            finish(f.phi_dst),
            E::Frontier {
                ghost_reads: mu_reads,
                writes: mu_writes,
            },
        ],
    }
}

/// The protocol classes of a concrete decomposition, via pf-grid's pure
/// exchange-shape description (so the model's view of "divided" can never
/// drift from what the exchange actually does).
pub fn dim_classes(dec: &Decomposition) -> [pf_analyze::DimClass; 3] {
    let shape = pf_grid::exchange_shape(dec);
    [0, 1, 2].map(|d| pf_analyze::DimClass {
        divided: shape[d] == pf_grid::DimPhase::SendRecv,
        periodic: dec.periodic[d],
    })
}

/// Verify the overlapped schedule's comm protocol under **all** 2³
/// divided-patterns — a proof for every rank count and decomposition at
/// once. Returns every diagnostic found (empty = proven sound).
pub fn verify_overlap_protocol(
    ks: &KernelSet,
    phi_variant: Variant,
    mu_variant: Variant,
) -> Vec<pf_analyze::Diagnostic> {
    pf_analyze::all_dim_patterns()
        .into_iter()
        .flat_map(|dims| {
            pf_analyze::check_protocol(&overlap_protocol_model(ks, phi_variant, mu_variant, dims))
        })
        .collect()
}

pub(crate) fn build_overlap_plan(
    p: &ModelParams,
    ks: &KernelSet,
    cfg: &DistConfig,
    dec: &Decomposition,
) -> OverlapPlan {
    // Always-on symbolic gate (cheap: a few dozen events, no tapes): the
    // schedule the plan will drive must be protocol-sound for this
    // decomposition's divided-pattern. The heavyweight spatial re-check
    // below is debug-only; this one is the release-build tripwire.
    let proto = pf_analyze::check_protocol(&overlap_protocol_model(
        ks,
        cfg.phi_variant,
        cfg.mu_variant,
        dim_classes(dec),
    ));
    let proto_errors: Vec<_> = proto.iter().filter(|d| d.is_error()).collect();
    assert!(
        proto_errors.is_empty(),
        "overlapped schedule fails protocol verification: {}",
        proto_errors
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    );
    let phi_tapes: Vec<&Tape> = variant_tapes(ks, cfg.phi_variant, true);
    let mu_tapes: Vec<&Tape> = variant_tapes(ks, cfg.mu_variant, false);
    // Ghost layers along dimensions the exchange completes inside `begin`
    // (leading undivided dimensions — local wraps, no messages) are as
    // fresh as owned data when the interior sweeps run, so no frontier
    // shell needs to guard them. `phase_widths` verified the full load
    // envelopes above; the mask only drops deferral where nothing defers.
    let k = pf_grid::first_deferred_dim(dec);
    let mask = |mut w: PhaseWidths| {
        for d in 0..k {
            w.lo[d] = 0;
            w.hi[d] = 0;
        }
        w
    };
    OverlapPlan {
        phi: mask(phase_widths(p, ks, &phi_tapes)),
        mu: mask(phase_widths(p, ks, &mu_tapes)),
    }
}

/// Sweep every tape of a phase over its interior region (halo messages may
/// still be in flight — the plan proves no ghost layer is read here).
fn run_phase_interiors(sim: &mut Simulation, tapes: &[Tape], w: PhaseWidths, rank: usize) {
    for tape in tapes {
        let ext = pf_backend::extended_range(tape, sim.cfg.shape);
        let (interior, _) = split_frontier(ext, w.lo, w.hi);
        pf_trace::counter_at("exec.interior_cells", rank).incr(interior.cells() as u64);
        sim.run_region(tape, interior);
    }
}

/// Sweep every tape of a phase over its frontier shells (receives have
/// completed; the ghost layers are fresh).
fn run_phase_frontiers(sim: &mut Simulation, tapes: &[Tape], w: PhaseWidths, rank: usize) {
    for tape in tapes {
        let ext = pf_backend::extended_range(tape, sim.cfg.shape);
        let (_, shells) = split_frontier(ext, w.lo, w.hi);
        for shell in shells {
            pf_trace::counter_at("exec.frontier_cells", rank).incr(shell.cells() as u64);
            sim.run_region(tape, shell);
        }
    }
}

/// The phase's kernel tapes in execution order (fluxes before the update).
fn phase_tapes(sim: &Simulation, variant: Variant, phi: bool) -> Vec<Tape> {
    match (variant, phi) {
        (Variant::Full, true) => vec![sim.kernels.phi_full.clone()],
        (Variant::Full, false) => vec![sim.kernels.mu_full.clone()],
        (Variant::Split, phi) => {
            let split = if phi {
                &sim.kernels.phi_split
            } else {
                &sim.kernels.mu_split
            };
            let mut tapes = split.flux_tapes.clone();
            tapes.push(split.update.clone());
            tapes
        }
    }
}

/// Apply Neumann physical boundaries to one field wherever this block
/// touches the domain edge (stale ghosts elsewhere get overwritten by the
/// exchange; the phased exchange then propagates corners correctly).
fn apply_neumann_edges(
    sim: &mut Simulation,
    comm: &Comm,
    dec: &Decomposition,
    field: Field,
    cfg: &DistConfig,
) {
    for (d, kind) in cfg.bc.iter().enumerate() {
        if *kind == BcKind::Neumann {
            let at_low = dec.neighbor(comm.rank(), d, -1).is_none();
            let at_high = dec.neighbor(comm.rank(), d, 1).is_none();
            if at_low || at_high {
                sim.store.get_mut(field).apply_neumann(d);
            }
        }
    }
}

/// One field's sync parameters: field, tag, and the epoch the *unbatched*
/// protocol stamps its messages with (the batched transport uses the
/// batch's base epoch instead — tags only need to be unique and agreed).
type SyncSpec = (Field, u32, u64);

/// Run `f` with every spec'd field taken out of the store (split borrow
/// for the batched multi-field exchange), re-inserting them afterwards.
fn with_taken_fields(
    sim: &mut Simulation,
    specs: &[SyncSpec],
    f: impl FnOnce(&mut [&mut pf_fields::FieldArray]),
) {
    let mut arrs: Vec<pf_fields::FieldArray> = specs
        .iter()
        .map(|(field, _, _)| sim.store.take(*field))
        .collect();
    {
        let mut refs: Vec<&mut pf_fields::FieldArray> = arrs.iter_mut().collect();
        f(&mut refs);
    }
    for ((field, _, _), arr) in specs.iter().zip(arrs) {
        sim.store.insert(*field, arr);
    }
}

/// Synchronize several fields at one schedule point. With `comm.batch`
/// (the default) the fields' face messages coalesce into one packed
/// message per (neighbour, epoch) — same per-field pack/unpack sequence,
/// so ghosts are bitwise identical to the unbatched path, which remains
/// available (`batch: false`) and sends each field at its own tag/epoch.
fn sync_fields(
    sim: &mut Simulation,
    comm: &mut Comm,
    dec: &Decomposition,
    specs: &[SyncSpec],
    batch_epoch: u64,
    cfg: &DistConfig,
) {
    for (field, _, _) in specs {
        apply_neumann_edges(sim, comm, dec, *field, cfg);
    }
    if cfg.comm.batch {
        with_taken_fields(sim, specs, |arrs| {
            pf_grid::exchange_halo_batched(comm, dec, arrs, batch_epoch, cfg.comm);
        });
    } else {
        for (field, tag, epoch) in specs {
            let arr = sim.store.get_mut(*field);
            exchange_halo(comm, dec, arr, *tag, *epoch, cfg.comm);
        }
    }
}

/// In-flight multi-field sync, batched or per-field.
enum SyncHandle {
    Batched(pf_grid::BatchHandle),
    PerField(Vec<HaloHandle>),
}

/// Start synchronizing several fields: apply physical boundaries, then
/// post the halo sends without waiting for the receives — one coalesced
/// message per neighbour when batching, one per field otherwise.
fn begin_sync_fields(
    sim: &mut Simulation,
    comm: &mut Comm,
    dec: &Decomposition,
    specs: &[SyncSpec],
    batch_epoch: u64,
    cfg: &DistConfig,
) -> SyncHandle {
    for (field, _, _) in specs {
        apply_neumann_edges(sim, comm, dec, *field, cfg);
    }
    if cfg.comm.batch {
        let mut handle = None;
        with_taken_fields(sim, specs, |arrs| {
            handle = Some(pf_grid::begin_exchange_batched(
                comm,
                dec,
                arrs,
                batch_epoch,
                cfg.comm,
            ));
        });
        SyncHandle::Batched(handle.expect("begin ran"))
    } else {
        SyncHandle::PerField(
            specs
                .iter()
                .map(|(field, tag, epoch)| {
                    let arr = sim.store.get_mut(*field);
                    begin_exchange(comm, dec, arr, *tag, *epoch, cfg.comm)
                })
                .collect(),
        )
    }
}

fn finish_sync_fields(
    sim: &mut Simulation,
    comm: &mut Comm,
    dec: &Decomposition,
    specs: &[SyncSpec],
    handle: SyncHandle,
    cfg: &DistConfig,
) {
    match handle {
        SyncHandle::Batched(h) => with_taken_fields(sim, specs, |arrs| {
            pf_grid::finish_exchange_batched(comm, dec, arrs, h, cfg.comm);
        }),
        SyncHandle::PerField(handles) => {
            for ((field, _, _), h) in specs.iter().zip(handles) {
                let arr = sim.store.get_mut(*field);
                finish_exchange(comm, dec, arr, h, cfg.comm);
            }
        }
    }
}

/// One distributed timestep of Algorithm 1 with communication/computation
/// overlap (§4.3, the Table 2 "overlap" option — here it genuinely changes
/// the schedule, not just the priced metadata):
///
/// ```text
/// post φ_src and µ_src halo sends
/// φ interior sweep                    ← halos in flight
/// complete φ_src/µ_src receives
/// φ frontier sweep, simplex projection
/// post φ_dst halo sends
/// µ interior sweep                    ← halos in flight
/// complete φ_dst receives
/// µ frontier sweep, swap
/// ```
///
/// Bitwise identical to [`dist_step`]: the ghost layers end up exactly as
/// the blocking exchange leaves them, region launches key every cell on
/// its absolute index, and the plan proves no interior cell reads a ghost.
pub(crate) fn dist_step_overlapped(
    sim: &mut Simulation,
    comm: &mut Comm,
    dec: &Decomposition,
    cfg: &DistConfig,
    plan: &OverlapPlan,
) {
    let rank = comm.rank();
    let _span = pf_trace::span_at("dist.step", rank);
    let f = sim.kernels.fields;
    let epoch = sim.step_count * 4;

    // φ_src and µ_src begin back-to-back with nothing between them, so
    // batching folds their face messages into one per (neighbour, epoch).
    let src_specs = [(f.phi_src, 0u32, epoch), (f.mu_src, 1u32, epoch + 1)];
    let h_src = begin_sync_fields(sim, comm, dec, &src_specs, epoch, cfg);
    let phi_tapes = phase_tapes(sim, cfg.phi_variant, true);
    let t0 = std::time::Instant::now();
    run_phase_interiors(sim, &phi_tapes, plan.phi, rank);
    pf_trace::counter_at("comm.overlap_window_ns", rank).incr(t0.elapsed().as_nanos() as u64);
    finish_sync_fields(sim, comm, dec, &src_specs, h_src, cfg);
    run_phase_frontiers(sim, &phi_tapes, plan.phi, rank);

    sim.project_simplex(f.phi_dst);
    let dst_specs = [(f.phi_dst, 2u32, epoch + 2)];
    let h_dst = begin_sync_fields(sim, comm, dec, &dst_specs, epoch + 2, cfg);
    let mu_tapes = phase_tapes(sim, cfg.mu_variant, false);
    let t0 = std::time::Instant::now();
    run_phase_interiors(sim, &mu_tapes, plan.mu, rank);
    pf_trace::counter_at("comm.overlap_window_ns", rank).incr(t0.elapsed().as_nanos() as u64);
    finish_sync_fields(sim, comm, dec, &dst_specs, h_dst, cfg);
    run_phase_frontiers(sim, &mu_tapes, plan.mu, rank);

    sim.store.swap(f.phi_src, f.phi_dst);
    sim.store.swap(f.mu_src, f.mu_dst);
    sim.step_count += 1;
}

/// One distributed timestep of Algorithm 1.
pub fn dist_step(sim: &mut Simulation, comm: &mut Comm, dec: &Decomposition, cfg: &DistConfig) {
    let _span = pf_trace::span_at("dist.step", comm.rank());
    let f = sim.kernels.fields;
    let epoch = sim.step_count * 4;
    sync_fields(
        sim,
        comm,
        dec,
        &[(f.phi_src, 0u32, epoch), (f.mu_src, 1u32, epoch + 1)],
        epoch,
        cfg,
    );

    let phi_full = sim.kernels.phi_full.clone();
    let phi_split = sim.kernels.phi_split.clone();
    match cfg.phi_variant {
        Variant::Full => sim.run(&phi_full),
        Variant::Split => sim.run_split(&phi_split),
    }
    sim.project_simplex(f.phi_dst);
    sync_fields(
        sim,
        comm,
        dec,
        &[(f.phi_dst, 2u32, epoch + 2)],
        epoch + 2,
        cfg,
    );

    let mu_full = sim.kernels.mu_full.clone();
    let mu_split = sim.kernels.mu_split.clone();
    match cfg.mu_variant {
        Variant::Full => sim.run(&mu_full),
        Variant::Split => sim.run_split(&mu_split),
    }

    sim.store.swap(f.phi_src, f.phi_dst);
    sim.store.swap(f.mu_src, f.mu_dst);
    sim.step_count += 1;
}

/// Run a distributed simulation for `steps` steps. The initial conditions
/// are given in *global* cell coordinates; `finish` extracts each rank's
/// result after the run. Returns the per-rank results in rank order.
///
/// Honours `cfg.checkpoint` (periodic/final sets, resume from the newest
/// complete set) and `cfg.faults` (message perturbation, planned rank
/// kill). A killed rank makes the whole world unwind with a dead-rank
/// panic; use [`run_distributed_resilient`] to recover from that
/// automatically.
pub fn run_distributed<R>(
    params: &ModelParams,
    kernels: &KernelSet,
    cfg: &DistConfig,
    steps: usize,
    init_phi: impl Fn(i64, i64, i64) -> Vec<f64> + Sync,
    init_mu: impl Fn(i64, i64, i64) -> Vec<f64> + Sync,
    finish: impl Fn(&Simulation) -> R + Sync,
) -> Vec<R>
where
    R: Send + 'static,
{
    let dec = cfg.decomposition();
    debug_assert_eq!(dec.nranks(), cfg.ranks);
    // The halo exchange fills dec.ghost_layers layers per sync; a kernel
    // whose loads reach further would read stale or uninitialized ghosts.
    let need = crate::kernels::required_halo_width(kernels);
    assert!(
        need <= dec.ghost_layers,
        "kernel set needs {need} ghost layer(s) but the decomposition exchanges only {}",
        dec.ghost_layers
    );
    // Built (and proved sound) once for the whole world; the per-rank
    // interior/frontier split is derived from it each step.
    let overlap_plan = if cfg.comm.overlap {
        Some(build_overlap_plan(params, kernels, cfg, &dec))
    } else {
        None
    };
    let results: parking_lot::Mutex<Vec<(usize, R)>> =
        parking_lot::Mutex::new(Vec::with_capacity(cfg.ranks));
    let plan = cfg.faults.clone().map(Arc::new);
    // With faults active, one rank can finish while a peer still needs a
    // retransmission from it, so the run must end in a rendezvous before
    // endpoints are dropped.
    let needs_shutdown_sync = plan.is_some();
    // Resuming ranks agree on the restart step before the world starts, so
    // a set completed between two ranks' scans cannot split the cohort.
    let resume_step = cfg.checkpoint.as_ref().and_then(|ck| {
        if ck.resume {
            checkpoint::latest_complete_set(&ck.dir, cfg.ranks)
        } else {
            None
        }
    });

    run_ranks_with_faults(cfg.ranks, plan, |mut comm| {
        // Metrics recorded on this rank thread (kernel launches, halo
        // exchanges, checkpoint writes, …) are tagged with the rank so
        // snapshots can aggregate across the simulated world.
        let rank = comm.rank();
        pf_trace::with_rank(rank, || {
            let block = dec.block(comm.rank());
            let mut sim_cfg = SimConfig::new(block.shape);
            sim_cfg.phi_variant = cfg.phi_variant;
            sim_cfg.mu_variant = cfg.mu_variant;
            sim_cfg.bc = cfg.bc;
            sim_cfg.seed = cfg.seed;
            if let Some(m) = cfg.exec_mode {
                sim_cfg.mode = m;
            } else if cfg.tune_exec {
                // Warm tuning cache → measured-fastest engine for this
                // block shape; cold/off → keep the shape-based default.
                // Engines are bitwise identical, so this consult can never
                // change physics (see `TunedChoice`'s bitwise contract).
                if let Some(m) = crate::tune::tuned_exec_mode(
                    crate::tune::TuneCache::from_env().as_ref(),
                    kernels,
                    &pf_machine::skylake_8174(),
                    block.shape,
                ) {
                    sim_cfg.mode = m;
                }
            }
            let mut sim = Simulation::new(params.clone(), kernels.clone(), sim_cfg);
            sim.origin = block.origin;
            let (ox, oy, oz) = (block.origin[0], block.origin[1], block.origin[2]);
            sim.init_phi(|x, y, z| init_phi(x as i64 + ox, y as i64 + oy, z as i64 + oz));
            sim.init_mu(|x, y, z| init_mu(x as i64 + ox, y as i64 + oy, z as i64 + oz));
            let meta = cfg.rank_meta(&dec, comm.rank());
            // Diff base for incremental writes, and how many increments
            // the set it names already sits on.
            let mut ckpt_base: Option<checkpoint::IncrementalBase> = None;
            let mut incs_since_full = 0u64;
            if let (Some(ck), Some(step)) = (&cfg.checkpoint, resume_step) {
                let applied = checkpoint::load_chain(&mut sim, &meta, &ck.dir, step, comm.rank())
                    .unwrap_or_else(|e| {
                        panic!("restore from set {step} under {}: {e}", ck.dir.display())
                    });
                // The resumed set is on disk and complete, so it can serve
                // as a base; its chain depth carries over.
                ckpt_base = Some(checkpoint::IncrementalBase::capture(&sim));
                incs_since_full = applied as u64;
            }
            while sim.step_count < steps as u64 {
                if let Some(plan) = comm.fault_plan() {
                    if plan.should_kill(comm.rank(), sim.step_count) {
                        // Simulated death: unwind without checkpointing or
                        // entering the shutdown rendezvous. Peers notice the
                        // dropped endpoint and unwind too.
                        panic!(
                            "{DEAD_RANK_MARKER}: planned kill of rank {} at step {}",
                            comm.rank(),
                            sim.step_count
                        );
                    }
                }
                match &overlap_plan {
                    Some(plan) => dist_step_overlapped(&mut sim, &mut comm, &dec, cfg, plan),
                    None => dist_step(&mut sim, &mut comm, &dec, cfg),
                }
                if let Some(ck) = &cfg.checkpoint {
                    let done = sim.step_count == steps as u64;
                    let periodic = ck.every > 0 && sim.step_count.is_multiple_of(ck.every);
                    if periodic || (done && ck.final_checkpoint) {
                        let path = checkpoint::rank_file(&ck.dir, sim.step_count, comm.rank());
                        let _span = pf_trace::span_at("dist.checkpoint_write", comm.rank());
                        let t0 = std::time::Instant::now();
                        let incremental = ck.incremental
                            && ckpt_base.is_some()
                            && incs_since_full < ck.full_every.max(1);
                        if let (true, Some(base)) = (incremental, &ckpt_base) {
                            checkpoint::save_incremental(&sim, &meta, base, &path).unwrap_or_else(
                                |e| panic!("checkpoint to {}: {e}", path.display()),
                            );
                            incs_since_full += 1;
                        } else {
                            checkpoint::save(&sim, &meta, &path).unwrap_or_else(|e| {
                                panic!("checkpoint to {}: {e}", path.display())
                            });
                            incs_since_full = 0;
                        }
                        ckpt_base = Some(checkpoint::IncrementalBase::capture(&sim));
                        // The step loop stalls for the whole write — that stall
                        // is the drain the I/O pricing model cares about.
                        pf_trace::gauge_at("dist.checkpoint_drain_s", comm.rank())
                            .add(t0.elapsed().as_secs_f64());
                    }
                }
            }
            if needs_shutdown_sync {
                comm.shutdown_barrier();
            }
            let r = finish(&sim);
            results.lock().push((comm.rank(), r));
        })
    });

    let mut out = results.into_inner();
    out.sort_by_key(|(r, _)| *r);
    out.into_iter().map(|(_, r)| r).collect()
}

/// Restart attempts before a dead-rank failure is considered permanent.
const MAX_RESTARTS: usize = 3;

/// [`run_distributed`] wrapped in cohort-level recovery: when the world
/// unwinds because a rank died (the planned kill of a fault plan), the
/// cohort is restarted from the newest complete checkpoint set with the
/// kill disarmed. Determinism makes the recovery exact — the restarted
/// ranks re-produce bitwise the states the lost cohort would have had.
/// Panics that are not rank deaths propagate unchanged.
pub fn run_distributed_resilient<R>(
    params: &ModelParams,
    kernels: &KernelSet,
    cfg: &DistConfig,
    steps: usize,
    init_phi: impl Fn(i64, i64, i64) -> Vec<f64> + Sync,
    init_mu: impl Fn(i64, i64, i64) -> Vec<f64> + Sync,
    finish: impl Fn(&Simulation) -> R + Sync,
) -> Vec<R>
where
    R: Send + 'static,
{
    let mut attempt_cfg = cfg.clone();
    let mut restarts = 0usize;
    loop {
        let outcome = with_silenced_dead_rank_panics(|| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_distributed(
                    params,
                    kernels,
                    &attempt_cfg,
                    steps,
                    &init_phi,
                    &init_mu,
                    &finish,
                )
            }))
        });
        match outcome {
            Ok(results) => return results,
            Err(payload) => {
                if !Comm::is_dead_rank_panic(payload.as_ref()) || restarts >= MAX_RESTARTS {
                    std::panic::resume_unwind(payload);
                }
                restarts += 1;
                pf_trace::counter("dist.restarts").incr(1);
                // The planned death already happened; the replacement
                // cohort must not re-kill, and must pick up from the last
                // complete set (or the initial conditions if none exists).
                if let Some(f) = &mut attempt_cfg.faults {
                    *f = f.disarmed();
                }
                if let Some(ck) = &mut attempt_cfg.checkpoint {
                    ck.resume = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::generate_kernels;
    use pf_ir::GenOptions;

    /// Distributed (4 ranks) vs single-block: identical fields, bitwise.
    #[test]
    fn four_ranks_match_single_block_bitwise() {
        let p = crate::kernels::tests::mini_model();
        let ks = generate_kernels(&p, &GenOptions::default());
        let global = [16usize, 16, 1];

        let init_phi = |x: i64, y: i64, _z: i64| {
            let d = (((x as f64 - 8.0).powi(2) + (y as f64 - 8.0).powi(2)).sqrt() - 5.0) / 3.0;
            let solid = 0.5 * (1.0 - d.tanh());
            vec![1.0 - solid, solid]
        };
        let init_mu = |_x: i64, _y: i64, _z: i64| vec![0.1];
        let steps = 4;

        // Reference single-block run.
        let mut cfg1 = SimConfig::new(global);
        cfg1.bc = [BcKind::Periodic; 3];
        let mut reference = Simulation::new(p.clone(), ks.clone(), cfg1);
        reference.init_phi(|x, y, z| init_phi(x as i64, y as i64, z as i64));
        reference.init_mu(|x, y, z| init_mu(x as i64, y as i64, z as i64));
        reference.run_steps(steps);

        // Distributed run on 4 ranks.
        let dcfg = DistConfig::new(global, 4);
        let blocks = run_distributed(&p, &ks, &dcfg, steps, init_phi, init_mu, |sim| {
            (sim.origin, sim.phi().clone(), sim.mu().clone())
        });

        for (origin, phi, mu) in blocks {
            let shape = phi.shape();
            for y in 0..shape[1] as isize {
                for x in 0..shape[0] as isize {
                    for alpha in 0..2 {
                        let want = reference.phi().get(
                            alpha,
                            x + origin[0] as isize,
                            y + origin[1] as isize,
                            0,
                        );
                        let got = phi.get(alpha, x, y, 0);
                        assert_eq!(got, want, "phi mismatch at origin {origin:?} ({x},{y})");
                    }
                    let want =
                        reference
                            .mu()
                            .get(0, x + origin[0] as isize, y + origin[1] as isize, 0);
                    assert_eq!(mu.get(0, x, y, 0), want, "mu mismatch");
                }
            }
        }
    }

    /// The tentpole invariant of the overlapped schedule: turning
    /// `comm.overlap` on changes only *when* things run, never the bits.
    #[test]
    fn overlapped_schedule_matches_blocking_bitwise() {
        let p = crate::kernels::tests::mini_model();
        let ks = generate_kernels(&p, &GenOptions::default());
        let global = [16usize, 12, 1];
        let init_phi = |x: i64, y: i64, _z: i64| {
            let d = (((x as f64 - 8.0).powi(2) + (y as f64 - 6.0).powi(2)).sqrt() - 4.0) / 3.0;
            let solid = 0.5 * (1.0 - d.tanh());
            vec![1.0 - solid, solid]
        };
        let init_mu = |_: i64, _: i64, _: i64| vec![0.1];
        let run = |overlap: bool, phi_v: Variant, mu_v: Variant| {
            let mut dcfg = DistConfig::new(global, 4);
            dcfg.bc = [BcKind::Periodic, BcKind::Neumann, BcKind::Periodic];
            dcfg.phi_variant = phi_v;
            dcfg.mu_variant = mu_v;
            dcfg.comm.overlap = overlap;
            run_distributed(&p, &ks, &dcfg, 4, init_phi, init_mu, |sim| {
                (sim.phi().clone(), sim.mu().clone())
            })
        };
        for (phi_v, mu_v) in [
            (Variant::Full, Variant::Full),
            (Variant::Full, Variant::Split),
            (Variant::Split, Variant::Split),
        ] {
            let blocking = run(false, phi_v, mu_v);
            let overlapped = run(true, phi_v, mu_v);
            for (b, o) in blocking.iter().zip(&overlapped) {
                assert_eq!(b.0.max_abs_diff(&o.0), 0.0, "{phi_v:?}/{mu_v:?} phi");
                assert_eq!(b.1.max_abs_diff(&o.1), 0.0, "{phi_v:?}/{mu_v:?} mu");
            }
        }
    }

    /// Same invariant when the process grid leaves x undivided ([1,2,1]
    /// here): begin completes the x wrap eagerly, the frontier carries no
    /// x shells, and the fields must still match blocking bitwise.
    #[test]
    fn overlap_with_undivided_x_matches_blocking_bitwise() {
        let p = crate::kernels::tests::mini_model();
        let ks = generate_kernels(&p, &GenOptions::default());
        let global = [8usize, 24, 1];
        assert_eq!(
            Decomposition::new(global, 2, [true; 3]).grid,
            [1, 2, 1],
            "workload no longer decomposes along y; pick another shape"
        );
        let init_phi = |x: i64, y: i64, _z: i64| {
            let d = (((x as f64 - 4.0).powi(2) + (y as f64 - 12.0).powi(2)).sqrt() - 5.0) / 3.0;
            let solid = 0.5 * (1.0 - d.tanh());
            vec![1.0 - solid, solid]
        };
        let init_mu = |_: i64, _: i64, _: i64| vec![0.1];
        let run = |overlap: bool| {
            let mut dcfg = DistConfig::new(global, 2);
            dcfg.mu_variant = Variant::Split;
            dcfg.comm.overlap = overlap;
            run_distributed(&p, &ks, &dcfg, 4, init_phi, init_mu, |sim| {
                (sim.phi().clone(), sim.mu().clone())
            })
        };
        let blocking = run(false);
        let overlapped = run(true);
        for (b, o) in blocking.iter().zip(&overlapped) {
            assert_eq!(b.0.max_abs_diff(&o.0), 0.0, "phi");
            assert_eq!(b.1.max_abs_diff(&o.1), 0.0, "mu");
        }
    }

    /// The tentpole protocol claim: the overlapped schedule is proven
    /// deadlock-free and stale-ghost-free symbolically, for every variant
    /// combination and every divided-pattern — i.e. for any rank count.
    #[test]
    fn overlapped_schedule_protocol_is_proven_sound_for_all_patterns() {
        let p = crate::kernels::tests::mini_model();
        let ks = generate_kernels(&p, &GenOptions::default());
        for (phi_v, mu_v) in [
            (Variant::Full, Variant::Full),
            (Variant::Full, Variant::Split),
            (Variant::Split, Variant::Full),
            (Variant::Split, Variant::Split),
        ] {
            let diags = verify_overlap_protocol(&ks, phi_v, mu_v);
            assert!(
                diags.is_empty(),
                "{phi_v:?}/{mu_v:?}: {}",
                pf_analyze::render(&diags)
            );
        }
    }

    /// The model's view of the exchange must agree with pf-grid's actual
    /// structure: divided dims message, the expansion defers from
    /// `first_deferred_dim`, undivided decompositions produce no wire
    /// traffic.
    #[test]
    fn protocol_model_is_consistent_with_grid_exchange() {
        let p = crate::kernels::tests::mini_model();
        let ks = generate_kernels(&p, &GenOptions::default());

        // [1,2,2] grid: x wraps locally, so the deferred dim is 1 and the
        // first wire op of the expanded script must be a dim-1 send.
        let dec = Decomposition::new([4, 8, 8], 4, [true; 3]);
        assert_eq!(dec.grid, [1, 2, 2]);
        let classes = dim_classes(&dec);
        assert_eq!(
            classes.map(|c| c.divided),
            [false, true, true],
            "dim classes must mirror the process grid"
        );
        let m = overlap_protocol_model(&ks, Variant::Full, Variant::Split, classes);
        let script = pf_analyze::expand_script(&m);
        assert!(
            matches!(script[0], pf_analyze::CommOp::Send { dim, .. }
                if dim == pf_grid::first_deferred_dim(&dec)),
            "{script:?}"
        );

        // Single-rank: everything is a local wrap, nothing on the wire.
        let dec1 = Decomposition::new([8, 8, 8], 1, [true; 3]);
        let m1 = overlap_protocol_model(&ks, Variant::Full, Variant::Full, dim_classes(&dec1));
        assert!(pf_analyze::expand_script(&m1).is_empty());

        // µ kernels read both φ generations across block faces, so the µ
        // frontier must depend on phi_dst's exchange — the model has to
        // see thatread, or stale-ghost-freedom would be vacuous.
        let mu_frontier = m
            .events
            .iter()
            .rev()
            .find_map(|e| match e {
                pf_analyze::ProtoEvent::Frontier { ghost_reads, .. } => Some(ghost_reads),
                _ => None,
            })
            .expect("model has a mu frontier");
        assert!(
            mu_frontier.contains(&ks.fields.phi_dst.name()),
            "{mu_frontier:?}"
        );
    }

    /// The protocol proof carries over to hierarchical decompositions:
    /// their flat process grid is the node-grid × socket-grid product, so
    /// `dim_classes` lands on one of the 2³ patterns the verifier already
    /// covers, and `check_protocol` re-proves the exchange sound for the
    /// hierarchical neighbour sets at every scale we target.
    #[test]
    fn hierarchical_decomposition_protocol_is_proven_sound() {
        let p = crate::kernels::tests::mini_model();
        let ks = generate_kernels(&p, &GenOptions::default());
        for (global, nodes, rpn) in [
            ([64usize, 64, 32], 16, 16), // 256 ranks, node × socket
            ([32, 32, 16], 8, 8),        // 64 ranks
            ([16, 16, 4], 4, 4),         // 16 ranks
            ([16, 12, 1], 2, 2),         // the bitwise-suite shape
        ] {
            let dec = Decomposition::hierarchical(global, nodes, rpn, [true; 3]);
            assert_eq!(dec.nranks(), nodes * rpn);
            let classes = dim_classes(&dec);
            assert!(
                pf_analyze::all_dim_patterns().contains(&classes),
                "hierarchical pattern {classes:?} outside the proven set"
            );
            let diags = pf_analyze::check_protocol(&overlap_protocol_model(
                &ks,
                Variant::Full,
                Variant::Split,
                classes,
            ));
            assert!(
                diags.is_empty(),
                "{nodes}x{rpn} over {global:?}: {}",
                pf_analyze::render(&diags)
            );
        }
    }

    /// Hierarchical rank placement is mapping-only: the same world run
    /// with `ranks_per_node` set must reproduce the flat run bit for bit,
    /// blocking and overlapped alike.
    #[test]
    fn hierarchical_mapping_matches_flat_bitwise() {
        let p = crate::kernels::tests::mini_model();
        let ks = generate_kernels(&p, &GenOptions::default());
        let global = [16usize, 12, 1];
        let init_phi = |x: i64, y: i64, _z: i64| {
            let d = (((x as f64 - 8.0).powi(2) + (y as f64 - 6.0).powi(2)).sqrt() - 4.0) / 3.0;
            let solid = 0.5 * (1.0 - d.tanh());
            vec![1.0 - solid, solid]
        };
        let init_mu = |_: i64, _: i64, _: i64| vec![0.1];
        // Same flat process grid either way, so blocks line up rank-for-rank.
        assert_eq!(
            Decomposition::hierarchical(global, 2, 2, [true; 3]).grid,
            Decomposition::new(global, 4, [true; 3]).grid,
        );
        let run = |rpn: Option<usize>, overlap: bool| {
            let mut dcfg = DistConfig::new(global, 4);
            dcfg.ranks_per_node = rpn;
            dcfg.comm.overlap = overlap;
            run_distributed(&p, &ks, &dcfg, 4, init_phi, init_mu, |sim| {
                (sim.phi().clone(), sim.mu().clone())
            })
        };
        for overlap in [false, true] {
            let flat = run(None, overlap);
            let hier = run(Some(2), overlap);
            for (f, h) in flat.iter().zip(&hier) {
                assert_eq!(f.0.max_abs_diff(&h.0), 0.0, "overlap={overlap} phi");
                assert_eq!(f.1.max_abs_diff(&h.1), 0.0, "overlap={overlap} mu");
            }
        }
    }

    /// Batching is a transport-level refinement: coalescing the per-field
    /// face messages into one packed message per (neighbour, epoch) must
    /// leave every ghost byte identical — including when the reliability
    /// layer is being hammered by dropped, duplicated, and delayed
    /// messages.
    #[test]
    fn batched_exchange_matches_unbatched_bitwise_under_message_faults() {
        let p = crate::kernels::tests::mini_model();
        let ks = generate_kernels(&p, &GenOptions::default());
        let global = [16usize, 12, 1];
        let init_phi = |x: i64, y: i64, _z: i64| {
            let d = (((x as f64 - 8.0).powi(2) + (y as f64 - 6.0).powi(2)).sqrt() - 4.0) / 3.0;
            let solid = 0.5 * (1.0 - d.tanh());
            vec![1.0 - solid, solid]
        };
        let init_mu = |_: i64, _: i64, _: i64| vec![0.1];
        let run = |batch: bool, overlap: bool, faults: Option<FaultPlan>| {
            let mut dcfg = DistConfig::new(global, 4);
            dcfg.comm.batch = batch;
            dcfg.comm.overlap = overlap;
            dcfg.faults = faults;
            run_distributed(&p, &ks, &dcfg, 4, init_phi, init_mu, |sim| {
                (sim.phi().clone(), sim.mu().clone())
            })
        };
        let plan = || {
            Some(
                FaultPlan::new(0xBA7C4)
                    .drop_prob(0.2)
                    .dup_prob(0.2)
                    .delay_prob(0.3),
            )
        };
        for overlap in [false, true] {
            let clean = run(false, overlap, None);
            for (label, res) in [
                ("batched", run(true, overlap, None)),
                ("batched+faults", run(true, overlap, plan())),
                ("unbatched+faults", run(false, overlap, plan())),
            ] {
                for (c, r) in clean.iter().zip(&res) {
                    assert_eq!(c.0.max_abs_diff(&r.0), 0.0, "{label} overlap={overlap} phi");
                    assert_eq!(c.1.max_abs_diff(&r.1), 0.0, "{label} overlap={overlap} mu");
                }
            }
        }
    }

    /// Seeded protocol mutations: each distortion of the schedule is
    /// caught by exactly the expected diagnostic family.
    #[test]
    fn mutated_schedules_are_rejected() {
        let p = crate::kernels::tests::mini_model();
        let ks = generate_kernels(&p, &GenOptions::default());
        let dims = dim_classes(&Decomposition::new([8, 8, 8], 8, [true; 3]));
        let sound = overlap_protocol_model(&ks, Variant::Full, Variant::Full, dims);
        assert!(pf_analyze::check_protocol(&sound).is_empty());

        // Swapped exchange order: begin µ with φ's epoch and vice versa —
        // epochs regress in schedule order.
        let mut m = sound.clone();
        let (pf_analyze::ProtoEvent::Begin { epoch: e0, .. }, ..) = (&mut m.events[0],) else {
            panic!("event 0 is a begin");
        };
        *e0 = 1;
        let pf_analyze::ProtoEvent::Begin { epoch: e1, .. } = &mut m.events[1] else {
            panic!("event 1 is a begin");
        };
        *e1 = 0;
        assert!(pf_analyze::check_protocol(&m)
            .iter()
            .any(|d| d.kind.code() == "protocol.epoch-regression"),);

        // Dropped finish: the φ_dst exchange is begun but never completed.
        let mut m = sound.clone();
        m.events.retain(|e| {
            !matches!(e, pf_analyze::ProtoEvent::Finish { field }
                if *field == ks.fields.phi_dst.name())
        });
        let d = pf_analyze::check_protocol(&m);
        assert!(
            d.iter().any(|d| d.kind.code() == "protocol.dropped-finish"),
            "{}",
            pf_analyze::render(&d)
        );
        assert!(
            d.iter()
                .any(|d| d.kind.code() == "protocol.frontier-before-finish"),
            "µ frontier now reads mid-flight ghosts: {}",
            pf_analyze::render(&d)
        );

        // Frontier hoisted before the finishes: stale reads.
        let mut m = sound.clone();
        let frontier_idx = m
            .events
            .iter()
            .position(|e| matches!(e, pf_analyze::ProtoEvent::Frontier { .. }))
            .unwrap();
        let ev = m.events.remove(frontier_idx);
        m.events.insert(2, ev);
        assert!(pf_analyze::check_protocol(&m)
            .iter()
            .any(|d| d.kind.code() == "protocol.frontier-before-finish"));
    }

    #[test]
    fn mixed_boundaries_run_stably() {
        let p = crate::kernels::tests::mini_model();
        let ks = generate_kernels(&p, &GenOptions::default());
        let mut dcfg = DistConfig::new([8, 8, 1], 2);
        dcfg.bc = [BcKind::Neumann, BcKind::Periodic, BcKind::Periodic];
        let sums = run_distributed(
            &p,
            &ks,
            &dcfg,
            3,
            |x, _, _| {
                let solid = if x < 4 { 1.0 } else { 0.0 };
                vec![1.0 - solid, solid]
            },
            |_, _, _| vec![0.05],
            |sim| sim.phi().interior_sum(1),
        );
        for s in sums {
            assert!(s.is_finite() && s >= 0.0);
        }
    }
}
