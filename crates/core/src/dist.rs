//! Distributed-memory simulation driver (§4).
//!
//! Runs Algorithm 1 across ranks: each rank owns one block of the
//! decomposed domain, halo exchanges replace the single-block boundary
//! handling, and non-periodic physical boundaries are applied only where a
//! block touches the domain edge. The result is bit-identical to the
//! single-block run on the same global domain (asserted by the integration
//! tests), because the kernels, Philox counters, and coordinates are all
//! keyed on *global* cell indices.

use crate::kernels::KernelSet;
use crate::params::ModelParams;
use crate::sim::{BcKind, SimConfig, Simulation, Variant};
use pf_grid::{exchange_halo, run_ranks, Comm, CommOptions, Decomposition};
use pf_symbolic::Field;

/// Distributed run configuration.
#[derive(Clone, Debug)]
pub struct DistConfig {
    pub global: [usize; 3],
    pub ranks: usize,
    pub bc: [BcKind; 3],
    pub phi_variant: Variant,
    pub mu_variant: Variant,
    pub comm: CommOptions,
    pub seed: u32,
}

impl DistConfig {
    pub fn new(global: [usize; 3], ranks: usize) -> Self {
        DistConfig {
            global,
            ranks,
            bc: [BcKind::Periodic; 3],
            phi_variant: Variant::Full,
            mu_variant: Variant::Split,
            comm: CommOptions::default(),
            seed: 42,
        }
    }

    fn periodic(&self) -> [bool; 3] {
        [
            self.bc[0] == BcKind::Periodic,
            self.bc[1] == BcKind::Periodic,
            self.bc[2] == BcKind::Periodic,
        ]
    }
}

/// Synchronize one field: physical boundaries where the block touches the
/// domain edge, halo exchange everywhere else.
fn sync_field(
    sim: &mut Simulation,
    comm: &mut Comm,
    dec: &Decomposition,
    field: Field,
    field_tag: u32,
    epoch: u64,
    opts: CommOptions,
    bc: [BcKind; 3],
) {
    // Neumann edges first (stale ghosts elsewhere get overwritten by the
    // exchange; the phased exchange then propagates corners correctly).
    for d in 0..3 {
        if bc[d] == BcKind::Neumann {
            let at_low = dec.neighbor(comm.rank(), d, -1).is_none();
            let at_high = dec.neighbor(comm.rank(), d, 1).is_none();
            if at_low || at_high {
                sim.store.get_mut(field).apply_neumann(d);
            }
        }
    }
    let arr = sim.store.get_mut(field);
    exchange_halo(comm, dec, arr, field_tag, epoch, opts);
}

/// One distributed timestep of Algorithm 1.
pub fn dist_step(
    sim: &mut Simulation,
    comm: &mut Comm,
    dec: &Decomposition,
    cfg: &DistConfig,
) {
    let f = sim.kernels.fields;
    let epoch = sim.step_count * 4;
    sync_field(sim, comm, dec, f.phi_src, 0, epoch, cfg.comm, cfg.bc);
    sync_field(sim, comm, dec, f.mu_src, 1, epoch + 1, cfg.comm, cfg.bc);

    let phi_full = sim.kernels.phi_full.clone();
    let phi_split = sim.kernels.phi_split.clone();
    match cfg.phi_variant {
        Variant::Full => sim.run(&phi_full),
        Variant::Split => sim.run_split(&phi_split),
    }
    sim.project_simplex(f.phi_dst);
    sync_field(sim, comm, dec, f.phi_dst, 2, epoch + 2, cfg.comm, cfg.bc);

    let mu_full = sim.kernels.mu_full.clone();
    let mu_split = sim.kernels.mu_split.clone();
    match cfg.mu_variant {
        Variant::Full => sim.run(&mu_full),
        Variant::Split => sim.run_split(&mu_split),
    }

    sim.store.swap(f.phi_src, f.phi_dst);
    sim.store.swap(f.mu_src, f.mu_dst);
    sim.step_count += 1;
}

/// Run a distributed simulation for `steps` steps. The initial conditions
/// are given in *global* cell coordinates; `finish` extracts each rank's
/// result after the run. Returns the per-rank results in rank order.
pub fn run_distributed<R: Send>(
    params: &ModelParams,
    kernels: &KernelSet,
    cfg: &DistConfig,
    steps: usize,
    init_phi: impl Fn(i64, i64, i64) -> Vec<f64> + Sync,
    init_mu: impl Fn(i64, i64, i64) -> Vec<f64> + Sync,
    finish: impl Fn(&Simulation) -> R + Sync,
) -> Vec<R>
where
    R: 'static,
{
    let dec = Decomposition::new(cfg.global, cfg.ranks, cfg.periodic());
    let results: parking_lot::Mutex<Vec<(usize, R)>> =
        parking_lot::Mutex::new(Vec::with_capacity(cfg.ranks));

    run_ranks(cfg.ranks, |mut comm| {
        let block = dec.block(comm.rank());
        let mut sim_cfg = SimConfig::new(block.shape);
        sim_cfg.phi_variant = cfg.phi_variant;
        sim_cfg.mu_variant = cfg.mu_variant;
        sim_cfg.bc = cfg.bc;
        sim_cfg.seed = cfg.seed;
        let mut sim = Simulation::new(params.clone(), kernels.clone(), sim_cfg);
        sim.origin = block.origin;
        let (ox, oy, oz) = (block.origin[0], block.origin[1], block.origin[2]);
        sim.init_phi(|x, y, z| init_phi(x as i64 + ox, y as i64 + oy, z as i64 + oz));
        sim.init_mu(|x, y, z| init_mu(x as i64 + ox, y as i64 + oy, z as i64 + oz));
        for _ in 0..steps {
            dist_step(&mut sim, &mut comm, &dec, cfg);
        }
        let r = finish(&sim);
        results.lock().push((comm.rank(), r));
    });

    let mut out = results.into_inner();
    out.sort_by_key(|(r, _)| *r);
    out.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::generate_kernels;
    use pf_ir::GenOptions;

    /// Distributed (4 ranks) vs single-block: identical fields, bitwise.
    #[test]
    fn four_ranks_match_single_block_bitwise() {
        let p = crate::kernels::tests::mini_model();
        let ks = generate_kernels(&p, &GenOptions::default());
        let global = [16usize, 16, 1];

        let init_phi = |x: i64, y: i64, _z: i64| {
            let d = (((x as f64 - 8.0).powi(2) + (y as f64 - 8.0).powi(2)).sqrt() - 5.0) / 3.0;
            let solid = 0.5 * (1.0 - d.tanh());
            vec![1.0 - solid, solid]
        };
        let init_mu = |_x: i64, _y: i64, _z: i64| vec![0.1];
        let steps = 4;

        // Reference single-block run.
        let mut cfg1 = SimConfig::new(global);
        cfg1.bc = [BcKind::Periodic; 3];
        let mut reference = Simulation::new(p.clone(), ks.clone(), cfg1);
        reference.init_phi(|x, y, z| init_phi(x as i64, y as i64, z as i64));
        reference.init_mu(|x, y, z| init_mu(x as i64, y as i64, z as i64));
        reference.run_steps(steps);

        // Distributed run on 4 ranks.
        let dcfg = DistConfig::new(global, 4);
        let blocks = run_distributed(
            &p,
            &ks,
            &dcfg,
            steps,
            init_phi,
            init_mu,
            |sim| (sim.origin, sim.phi().clone(), sim.mu().clone()),
        );

        for (origin, phi, mu) in blocks {
            let shape = phi.shape();
            for y in 0..shape[1] as isize {
                for x in 0..shape[0] as isize {
                    for alpha in 0..2 {
                        let want = reference.phi().get(
                            alpha,
                            x + origin[0] as isize,
                            y + origin[1] as isize,
                            0,
                        );
                        let got = phi.get(alpha, x, y, 0);
                        assert_eq!(got, want, "phi mismatch at origin {origin:?} ({x},{y})");
                    }
                    let want = reference
                        .mu()
                        .get(0, x + origin[0] as isize, y + origin[1] as isize, 0);
                    assert_eq!(mu.get(0, x, y, 0), want, "mu mismatch");
                }
            }
        }
    }

    #[test]
    fn mixed_boundaries_run_stably() {
        let p = crate::kernels::tests::mini_model();
        let ks = generate_kernels(&p, &GenOptions::default());
        let mut dcfg = DistConfig::new([8, 8, 1], 2);
        dcfg.bc = [BcKind::Neumann, BcKind::Periodic, BcKind::Periodic];
        let sums = run_distributed(
            &p,
            &ks,
            &dcfg,
            3,
            |x, _, _| {
                let solid = if x < 4 { 1.0 } else { 0.0 };
                vec![1.0 - solid, solid]
            },
            |_, _, _| vec![0.05],
            |sim| sim.phi().interior_sum(1),
        );
        for s in sums {
            assert!(s.is_finite() && s >= 0.0);
        }
    }
}
