//! Versioned binary checkpoints for exact restart.
//!
//! A checkpoint captures everything a rank needs to resume bit-identically:
//! the interior cells of φ and µ (ghosts are re-synchronized at the start
//! of every step, so they carry no information), the step count, the Philox
//! counter state (seed + timestep — the RNG is stateless, §3.3), a
//! fingerprint of the model parameters, and the block metadata of the
//! domain decomposition so a restart can verify it is resuming the same
//! partitioning.
//!
//! Format (version 1, little-endian):
//!
//! ```text
//! magic        8 B   "PFCKPT01"
//! version      u32
//! params_fp    u64   FNV-1a fingerprint of ModelParams
//! step         u64
//! seed         u32   Philox key half of the counter state
//! phi_variant  u8    0 = Full, 1 = Split
//! mu_variant   u8
//! bc           3×u8  0 = Periodic, 1 = Neumann
//! rank         u32   │
//! nranks       u32   │ block metadata from the
//! grid         3×u32 │ Decomposition
//! global       3×u64 │
//! origin       3×i64
//! shape        3×u64 local interior extent
//! phases       u32
//! num_mu       u32
//! payload      f64 bits, x-fastest, component-major: φ then µ interiors
//! checksum     u64   FNV-1a over every preceding byte
//! ```
//!
//! Files are written atomically (`.tmp` then rename), so a crash mid-write
//! never leaves a file that parses. Every decode failure is a typed
//! [`CheckpointError`]; corrupt input is rejected, never panicked on.
//!
//! Distributed runs write one file per rank into a per-step set directory,
//! `<root>/step_<NNNNNNNN>/rank_<RRRR>.ckpt`; a set is *complete* once all
//! `nranks` files exist, and restart resumes from the newest complete set.
//!
//! **Incremental checkpoints** (version 2) carry the same header followed
//! by the step of the *base* checkpoint they apply on top of and only the
//! interior rows — one `(field, component, y, z)` run of `shape[0]` values
//! — whose bits changed since that base. Version-1 readers reject them
//! with [`CheckpointError::UnsupportedVersion`]; [`load_chain`] walks a
//! rank file's base chain back to the newest full snapshot and replays the
//! increments forward. Phase-field fronts touch a thin shell of cells per
//! step, so far-field slabs drop out of the delta entirely.

use crate::params::ModelParams;
use crate::sim::{BcKind, Simulation, Variant};
use pf_rng::CounterState;
use std::fmt;
use std::path::{Path, PathBuf};

pub const MAGIC: [u8; 8] = *b"PFCKPT01";
pub const VERSION: u32 = 1;
/// Format version of incremental (dirty-row delta) checkpoint files.
pub const VERSION_INCREMENTAL: u32 = 2;

/// Everything that can go wrong reading or writing a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    Io(std::io::Error),
    BadMagic,
    UnsupportedVersion(u32),
    /// The file ends before the format says it should.
    Truncated,
    ChecksumMismatch,
    /// The checkpoint was written by a run with different model parameters.
    ParamsMismatch {
        expected: u64,
        found: u64,
    },
    /// Structurally valid but belongs to a different run setup (shape,
    /// decomposition, kernel variants, boundary conditions, or seed).
    Incompatible(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a pf checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (expected {VERSION})")
            }
            CheckpointError::Truncated => write!(f, "checkpoint file is truncated"),
            CheckpointError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            CheckpointError::ParamsMismatch { expected, found } => write!(
                f,
                "checkpoint written with different model parameters \
                 (fingerprint {found:#018x}, expected {expected:#018x})"
            ),
            CheckpointError::Incompatible(why) => {
                write!(f, "checkpoint incompatible with this run: {why}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Block metadata stamped into each rank's file so a restart can verify it
/// is resuming the same decomposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankMeta {
    pub rank: u32,
    pub nranks: u32,
    /// Rank grid of the decomposition.
    pub grid: [u32; 3],
    /// Global domain extent.
    pub global: [u64; 3],
}

impl RankMeta {
    /// Metadata of an undecomposed single-block run.
    pub fn single(global: [usize; 3]) -> Self {
        RankMeta {
            rank: 0,
            nranks: 1,
            grid: [1, 1, 1],
            global: [global[0] as u64, global[1] as u64, global[2] as u64],
        }
    }
}

/// Decoded header of a checkpoint file (payload not included).
#[derive(Clone, Debug)]
pub struct CheckpointHeader {
    pub version: u32,
    pub params_fp: u64,
    pub step: u64,
    pub rng: CounterState,
    pub phi_variant: Variant,
    pub mu_variant: Variant,
    pub bc: [BcKind; 3],
    pub meta: RankMeta,
    pub origin: [i64; 3],
    pub shape: [usize; 3],
    pub phases: usize,
    pub num_mu: usize,
}

// ---------------------------------------------------------------------------
// FNV-1a hashing (params fingerprint and whole-file checksum)
// ---------------------------------------------------------------------------

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Order-sensitive FNV-1a fingerprint over every field of [`ModelParams`].
/// Any change to the physics configuration changes the fingerprint, which
/// is how a restart refuses a checkpoint from a different model.
pub fn params_fingerprint(p: &ModelParams) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(p.name.len() as u64);
    h.write(p.name.as_bytes());
    for v in [p.phases, p.components, p.dim, p.liquid_phase] {
        h.write_u64(v as u64);
    }
    for v in [
        p.dx,
        p.dt,
        p.eps,
        p.gamma_third,
        p.fluctuation_amplitude,
        p.eta,
    ] {
        h.write_f64(v);
    }
    for matrix in [&p.gamma, &p.tau, &p.a_coeff] {
        h.write_u64(matrix.len() as u64);
        for row in matrix.iter() {
            h.write_u64(row.len() as u64);
            for &v in row {
                h.write_f64(v);
            }
        }
    }
    h.write_u64(p.diffusivity.len() as u64);
    for &v in &p.diffusivity {
        h.write_f64(v);
    }
    h.write_u64(p.b_coeff.len() as u64);
    for row in &p.b_coeff {
        h.write_u64(row.len() as u64);
        for &(b0, b1) in row {
            h.write_f64(b0);
            h.write_f64(b1);
        }
    }
    h.write_u64(p.c_coeff.len() as u64);
    for &(c0, c1) in &p.c_coeff {
        h.write_f64(c0);
        h.write_f64(c1);
    }
    match p.anisotropy {
        None => h.write_u64(0),
        Some(d) => {
            h.write_u64(1);
            h.write_f64(d);
        }
    }
    h.write_u64(p.orientation.len() as u64);
    for &v in &p.orientation {
        h.write_f64(v);
    }
    for v in [
        p.temperature.t0,
        p.temperature.gradient,
        p.temperature.velocity,
    ] {
        h.write_f64(v);
    }
    h.write_u64(p.antitrapping as u64);
    h.finish()
}

// ---------------------------------------------------------------------------
// Byte-level encode/decode
// ---------------------------------------------------------------------------

fn variant_code(v: Variant) -> u8 {
    match v {
        Variant::Full => 0,
        Variant::Split => 1,
    }
}

fn variant_from(code: u8) -> Result<Variant, CheckpointError> {
    match code {
        0 => Ok(Variant::Full),
        1 => Ok(Variant::Split),
        other => Err(CheckpointError::Incompatible(format!(
            "unknown kernel variant code {other}"
        ))),
    }
}

fn bc_code(b: BcKind) -> u8 {
    match b {
        BcKind::Periodic => 0,
        BcKind::Neumann => 1,
    }
}

fn bc_from(code: u8) -> Result<BcKind, CheckpointError> {
    match code {
        0 => Ok(BcKind::Periodic),
        1 => Ok(BcKind::Neumann),
        other => Err(CheckpointError::Incompatible(format!(
            "unknown boundary-condition code {other}"
        ))),
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).ok_or(CheckpointError::Truncated)?;
        if end > self.buf.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, CheckpointError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }
}

/// Serialize a simulation's restart state.
pub fn encode(sim: &Simulation, meta: &RankMeta) -> Vec<u8> {
    let shape = sim.cfg.shape;
    let phases = sim.params.phases;
    let num_mu = sim.params.num_mu();
    let cells = shape[0] * shape[1] * shape[2];
    let mut out = Vec::with_capacity(128 + 8 * cells * (phases + num_mu));
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&params_fingerprint(&sim.params).to_le_bytes());
    out.extend_from_slice(&sim.step_count.to_le_bytes());
    out.extend_from_slice(&sim.cfg.seed.to_le_bytes());
    out.push(variant_code(sim.cfg.phi_variant));
    out.push(variant_code(sim.cfg.mu_variant));
    for d in 0..3 {
        out.push(bc_code(sim.cfg.bc[d]));
    }
    out.extend_from_slice(&meta.rank.to_le_bytes());
    out.extend_from_slice(&meta.nranks.to_le_bytes());
    for d in 0..3 {
        out.extend_from_slice(&meta.grid[d].to_le_bytes());
    }
    for d in 0..3 {
        out.extend_from_slice(&meta.global[d].to_le_bytes());
    }
    for d in 0..3 {
        out.extend_from_slice(&sim.origin[d].to_le_bytes());
    }
    for s in shape {
        out.extend_from_slice(&(s as u64).to_le_bytes());
    }
    out.extend_from_slice(&(phases as u32).to_le_bytes());
    out.extend_from_slice(&(num_mu as u32).to_le_bytes());
    for (arr, comps) in [(sim.phi(), phases), (sim.mu(), num_mu)] {
        for comp in 0..comps {
            for z in 0..shape[2] as isize {
                for y in 0..shape[1] as isize {
                    for x in 0..shape[0] as isize {
                        out.extend_from_slice(&arr.get(comp, x, y, z).to_bits().to_le_bytes());
                    }
                }
            }
        }
    }
    let mut h = Fnv::new();
    h.write(&out);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out
}

fn decode_header(r: &mut Reader<'_>) -> Result<CheckpointHeader, CheckpointError> {
    if r.take(8)? != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let params_fp = r.u64()?;
    let step = r.u64()?;
    let seed = r.u32()?;
    let phi_variant = variant_from(r.u8()?)?;
    let mu_variant = variant_from(r.u8()?)?;
    let bc = [bc_from(r.u8()?)?, bc_from(r.u8()?)?, bc_from(r.u8()?)?];
    let rank = r.u32()?;
    let nranks = r.u32()?;
    let grid = [r.u32()?, r.u32()?, r.u32()?];
    let global = [r.u64()?, r.u64()?, r.u64()?];
    let origin = [r.i64()?, r.i64()?, r.i64()?];
    let shape_u = [r.u64()?, r.u64()?, r.u64()?];
    let phases = r.u32()? as usize;
    let num_mu = r.u32()? as usize;
    let mut shape = [0usize; 3];
    for d in 0..3 {
        shape[d] = usize::try_from(shape_u[d])
            .map_err(|_| CheckpointError::Incompatible("shape overflows usize".into()))?;
    }
    Ok(CheckpointHeader {
        version,
        params_fp,
        step,
        rng: CounterState::new(seed, step),
        phi_variant,
        mu_variant,
        bc,
        meta: RankMeta {
            rank,
            nranks,
            grid,
            global,
        },
        origin,
        shape,
        phases,
        num_mu,
    })
}

fn verify_checksum(bytes: &[u8]) -> Result<&[u8], CheckpointError> {
    if bytes.len() < 8 {
        return Err(CheckpointError::Truncated);
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().unwrap());
    let mut h = Fnv::new();
    h.write(body);
    if h.finish() != stored {
        return Err(CheckpointError::ChecksumMismatch);
    }
    Ok(body)
}

/// Parse and checksum-verify a checkpoint's header from raw file bytes.
pub fn parse_header(bytes: &[u8]) -> Result<CheckpointHeader, CheckpointError> {
    let body = verify_checksum(bytes)?;
    decode_header(&mut Reader { buf: body, pos: 0 })
}

/// Read and verify only the header of a checkpoint file.
pub fn read_header(path: &Path) -> Result<CheckpointHeader, CheckpointError> {
    parse_header(&std::fs::read(path)?)
}

/// Restore a simulation from checkpoint bytes. `sim` must be configured
/// identically to the writer (shape, variants, boundary conditions, seed,
/// parameters); every divergence is a typed error, and `sim` is untouched
/// on failure. On success the field interiors, step count, and origin are
/// loaded — ghost cells are left stale because every step begins by
/// re-synchronizing them.
pub fn decode_into(
    sim: &mut Simulation,
    meta: &RankMeta,
    bytes: &[u8],
) -> Result<(), CheckpointError> {
    let body = verify_checksum(bytes)?;
    let mut r = Reader { buf: body, pos: 0 };
    let h = decode_header(&mut r)?;
    check_compat(sim, meta, &h)?;

    // Stage the payload fully before touching `sim`, so a truncated file
    // can't leave it half-restored.
    let shape = h.shape;
    let cells = shape[0] * shape[1] * shape[2];
    let mut phi = vec![0.0f64; h.phases * cells];
    let mut mu = vec![0.0f64; h.num_mu * cells];
    for slot in phi.iter_mut().chain(mu.iter_mut()) {
        *slot = r.f64()?;
    }
    if r.pos != body.len() {
        return Err(CheckpointError::Incompatible(
            "trailing bytes after payload".into(),
        ));
    }

    sim.step_count = h.step;
    sim.origin = h.origin;
    let fields = sim.kernels.fields;
    for (field, comps, data) in [
        (fields.phi_src, h.phases, &phi),
        (fields.mu_src, h.num_mu, &mu),
    ] {
        let arr = sim.store.get_mut(field);
        let mut it = data.iter();
        for comp in 0..comps {
            for z in 0..shape[2] as isize {
                for y in 0..shape[1] as isize {
                    for x in 0..shape[0] as isize {
                        arr.set(comp, x, y, z, *it.next().unwrap());
                    }
                }
            }
        }
    }
    Ok(())
}

/// Reject a structurally valid header that belongs to a different run
/// setup. Shared by the full and incremental decoders.
fn check_compat(
    sim: &Simulation,
    meta: &RankMeta,
    h: &CheckpointHeader,
) -> Result<(), CheckpointError> {
    let expected_fp = params_fingerprint(&sim.params);
    if h.params_fp != expected_fp {
        return Err(CheckpointError::ParamsMismatch {
            expected: expected_fp,
            found: h.params_fp,
        });
    }
    let incompat = |why: String| Err(CheckpointError::Incompatible(why));
    if h.shape != sim.cfg.shape {
        return incompat(format!(
            "block shape {:?} != configured {:?}",
            h.shape, sim.cfg.shape
        ));
    }
    if h.meta != *meta {
        return incompat(format!("decomposition {:?} != expected {:?}", h.meta, meta));
    }
    if (h.phi_variant, h.mu_variant) != (sim.cfg.phi_variant, sim.cfg.mu_variant) {
        return incompat(format!(
            "kernel variants ({:?},{:?}) != configured ({:?},{:?})",
            h.phi_variant, h.mu_variant, sim.cfg.phi_variant, sim.cfg.mu_variant
        ));
    }
    if h.bc != sim.cfg.bc {
        return incompat(format!(
            "boundary conditions {:?} != {:?}",
            h.bc, sim.cfg.bc
        ));
    }
    if h.rng.seed != sim.cfg.seed {
        return incompat(format!(
            "seed {} != configured {}",
            h.rng.seed, sim.cfg.seed
        ));
    }
    if h.phases != sim.params.phases || h.num_mu != sim.params.num_mu() {
        return incompat(format!(
            "field counts ({}, {}) != model ({}, {})",
            h.phases,
            h.num_mu,
            sim.params.phases,
            sim.params.num_mu()
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Incremental (dirty-row) checkpoints — format version 2
// ---------------------------------------------------------------------------
//
// After the version-1 header fields the file carries:
//
// ```text
// base_step    u64   step of the checkpoint this delta applies on top of
// nrows        u64
// per row:     field u8 (0 = φ, 1 = µ), comp u32, y u32, z u32,
//              shape[0] × f64 bits
// checksum     u64   FNV-1a over every preceding byte
// ```

/// In-memory copy of the interiors as of the last checkpoint written —
/// the diff base for incremental writes. One per rank, refreshed after
/// every successful write (full or incremental).
#[derive(Clone)]
pub struct IncrementalBase {
    /// Step the base state corresponds to; a set for it exists on disk.
    pub step: u64,
    phi: Vec<f64>,
    mu: Vec<f64>,
}

impl IncrementalBase {
    /// Snapshot `sim`'s interiors in payload order (component-major,
    /// z → y → x rows).
    pub fn capture(sim: &Simulation) -> Self {
        let shape = sim.cfg.shape;
        let grab = |arr: &pf_fields::FieldArray, comps: usize| {
            let mut v = Vec::with_capacity(comps * shape[0] * shape[1] * shape[2]);
            for comp in 0..comps {
                for z in 0..shape[2] as isize {
                    for y in 0..shape[1] as isize {
                        for x in 0..shape[0] as isize {
                            v.push(arr.get(comp, x, y, z));
                        }
                    }
                }
            }
            v
        };
        IncrementalBase {
            step: sim.step_count,
            phi: grab(sim.phi(), sim.params.phases),
            mu: grab(sim.mu(), sim.params.num_mu()),
        }
    }
}

/// Serialize the dirty rows of `sim` relative to `base` as a version-2
/// incremental checkpoint. A row is the `shape[0]` x-values of one
/// `(field, component, y, z)` run; it is written only when its bits differ
/// from the base, so the untouched far field costs nothing.
pub fn encode_incremental(sim: &Simulation, meta: &RankMeta, base: &IncrementalBase) -> Vec<u8> {
    let shape = sim.cfg.shape;
    let phases = sim.params.phases;
    let num_mu = sim.params.num_mu();
    let nx = shape[0];

    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION_INCREMENTAL.to_le_bytes());
    out.extend_from_slice(&params_fingerprint(&sim.params).to_le_bytes());
    out.extend_from_slice(&sim.step_count.to_le_bytes());
    out.extend_from_slice(&sim.cfg.seed.to_le_bytes());
    out.push(variant_code(sim.cfg.phi_variant));
    out.push(variant_code(sim.cfg.mu_variant));
    for d in 0..3 {
        out.push(bc_code(sim.cfg.bc[d]));
    }
    out.extend_from_slice(&meta.rank.to_le_bytes());
    out.extend_from_slice(&meta.nranks.to_le_bytes());
    for d in 0..3 {
        out.extend_from_slice(&meta.grid[d].to_le_bytes());
    }
    for d in 0..3 {
        out.extend_from_slice(&meta.global[d].to_le_bytes());
    }
    for d in 0..3 {
        out.extend_from_slice(&sim.origin[d].to_le_bytes());
    }
    for s in shape {
        out.extend_from_slice(&(s as u64).to_le_bytes());
    }
    out.extend_from_slice(&(phases as u32).to_le_bytes());
    out.extend_from_slice(&(num_mu as u32).to_le_bytes());
    out.extend_from_slice(&base.step.to_le_bytes());

    let nrows_at = out.len();
    out.extend_from_slice(&0u64.to_le_bytes());
    let mut nrows = 0u64;
    let mut clean = 0u64;
    for (fcode, arr, comps, basev) in [
        (0u8, sim.phi(), phases, &base.phi),
        (1u8, sim.mu(), num_mu, &base.mu),
    ] {
        let mut idx = 0usize;
        for comp in 0..comps {
            for z in 0..shape[2] as isize {
                for y in 0..shape[1] as isize {
                    let row = &basev[idx..idx + nx];
                    idx += nx;
                    let dirty = (0..nx as isize)
                        .any(|x| arr.get(comp, x, y, z).to_bits() != row[x as usize].to_bits());
                    if !dirty {
                        clean += 1;
                        continue;
                    }
                    nrows += 1;
                    out.push(fcode);
                    out.extend_from_slice(&(comp as u32).to_le_bytes());
                    out.extend_from_slice(&(y as u32).to_le_bytes());
                    out.extend_from_slice(&(z as u32).to_le_bytes());
                    for x in 0..nx as isize {
                        out.extend_from_slice(&arr.get(comp, x, y, z).to_bits().to_le_bytes());
                    }
                }
            }
        }
    }
    out[nrows_at..nrows_at + 8].copy_from_slice(&nrows.to_le_bytes());
    pf_trace::counter("checkpoint.incremental.dirty_rows").incr(nrows);
    pf_trace::counter("checkpoint.incremental.clean_rows").incr(clean);

    let mut h = Fnv::new();
    h.write(&out);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out
}

/// Header version of checksummed checkpoint bytes, without committing to a
/// format: the dispatch point between full and incremental decoding.
pub fn peek_version(bytes: &[u8]) -> Result<u32, CheckpointError> {
    let body = verify_checksum(bytes)?;
    let mut r = Reader { buf: body, pos: 0 };
    if r.take(8)? != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    r.u32()
}

/// Identical field layout to version 1 past the version word, so the two
/// header decoders differ only in the version they accept.
fn decode_header_incremental(r: &mut Reader<'_>) -> Result<CheckpointHeader, CheckpointError> {
    if r.take(8)? != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION_INCREMENTAL {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let params_fp = r.u64()?;
    let step = r.u64()?;
    let seed = r.u32()?;
    let phi_variant = variant_from(r.u8()?)?;
    let mu_variant = variant_from(r.u8()?)?;
    let bc = [bc_from(r.u8()?)?, bc_from(r.u8()?)?, bc_from(r.u8()?)?];
    let rank = r.u32()?;
    let nranks = r.u32()?;
    let grid = [r.u32()?, r.u32()?, r.u32()?];
    let global = [r.u64()?, r.u64()?, r.u64()?];
    let origin = [r.i64()?, r.i64()?, r.i64()?];
    let shape_u = [r.u64()?, r.u64()?, r.u64()?];
    let phases = r.u32()? as usize;
    let num_mu = r.u32()? as usize;
    let mut shape = [0usize; 3];
    for d in 0..3 {
        shape[d] = usize::try_from(shape_u[d])
            .map_err(|_| CheckpointError::Incompatible("shape overflows usize".into()))?;
    }
    Ok(CheckpointHeader {
        version,
        params_fp,
        step,
        rng: CounterState::new(seed, step),
        phi_variant,
        mu_variant,
        bc,
        meta: RankMeta {
            rank,
            nranks,
            grid,
            global,
        },
        origin,
        shape,
        phases,
        num_mu,
    })
}

/// The base step an incremental file applies on top of (header only).
pub fn incremental_base_step(bytes: &[u8]) -> Result<u64, CheckpointError> {
    let body = verify_checksum(bytes)?;
    let mut r = Reader { buf: body, pos: 0 };
    let _h = decode_header_incremental(&mut r)?;
    r.u64()
}

/// Apply a version-2 incremental checkpoint on top of the state `sim`
/// currently holds, which must be the delta's base (`sim.step_count ==
/// base_step`). All rows are staged and validated before `sim` is touched;
/// every failure is typed and leaves `sim` unchanged.
pub fn apply_incremental(
    sim: &mut Simulation,
    meta: &RankMeta,
    bytes: &[u8],
) -> Result<(), CheckpointError> {
    let body = verify_checksum(bytes)?;
    let mut r = Reader { buf: body, pos: 0 };
    let h = decode_header_incremental(&mut r)?;
    check_compat(sim, meta, &h)?;
    let base_step = r.u64()?;
    if base_step >= h.step {
        return Err(CheckpointError::Incompatible(format!(
            "increment at step {} does not advance its base step {base_step}",
            h.step
        )));
    }
    if sim.step_count != base_step {
        return Err(CheckpointError::Incompatible(format!(
            "increment applies on top of step {base_step} but the simulation holds step {}",
            sim.step_count
        )));
    }

    let shape = h.shape;
    let nx = shape[0];
    let nrows = r.u64()?;
    let mut rows: Vec<(u8, usize, isize, isize, Vec<f64>)> = Vec::new();
    for _ in 0..nrows {
        let fcode = r.u8()?;
        let comps = match fcode {
            0 => h.phases,
            1 => h.num_mu,
            other => {
                return Err(CheckpointError::Incompatible(format!(
                    "unknown field code {other} in incremental row"
                )))
            }
        };
        let comp = r.u32()? as usize;
        let y = r.u32()? as usize;
        let z = r.u32()? as usize;
        if comp >= comps || y >= shape[1] || z >= shape[2] {
            return Err(CheckpointError::Incompatible(format!(
                "incremental row ({fcode},{comp},{y},{z}) outside block {shape:?}"
            )));
        }
        let mut vals = Vec::with_capacity(nx);
        for _ in 0..nx {
            vals.push(r.f64()?);
        }
        rows.push((fcode, comp, y as isize, z as isize, vals));
    }
    if r.pos != body.len() {
        return Err(CheckpointError::Incompatible(
            "trailing bytes after incremental rows".into(),
        ));
    }

    sim.step_count = h.step;
    sim.origin = h.origin;
    let fields = sim.kernels.fields;
    for (fcode, comp, y, z, vals) in rows {
        let field = if fcode == 0 {
            fields.phi_src
        } else {
            fields.mu_src
        };
        let arr = sim.store.get_mut(field);
        for (x, v) in vals.into_iter().enumerate() {
            arr.set(comp, x as isize, y, z, v);
        }
    }
    Ok(())
}

/// Save an incremental checkpoint to `path` (atomic write).
pub fn save_incremental(
    sim: &Simulation,
    meta: &RankMeta,
    base: &IncrementalBase,
    path: &Path,
) -> Result<(), CheckpointError> {
    let _span = pf_trace::span("checkpoint.save_incremental");
    let bytes = encode_incremental(sim, meta, base);
    pf_trace::counter("checkpoint.bytes_written").incr(bytes.len() as u64);
    pf_trace::counter("checkpoint.incremental_writes").incr(1);
    write_atomic(path, &bytes)
}

/// Restore `sim` from the rank file at `step`, following incremental base
/// links back to the newest full snapshot and replaying the deltas
/// forward. Returns the number of increments applied (0 = the file was a
/// full snapshot). Errors are typed; a broken link in the chain surfaces
/// as the underlying I/O or format error.
pub fn load_chain(
    sim: &mut Simulation,
    meta: &RankMeta,
    root: &Path,
    step: u64,
    rank: usize,
) -> Result<usize, CheckpointError> {
    let mut chain: Vec<Vec<u8>> = Vec::new();
    let mut cur = step;
    loop {
        let bytes = std::fs::read(rank_file(root, cur, rank))?;
        match peek_version(&bytes)? {
            VERSION => {
                decode_into(sim, meta, &bytes)?;
                break;
            }
            VERSION_INCREMENTAL => {
                let base = incremental_base_step(&bytes)?;
                if base >= cur {
                    return Err(CheckpointError::Incompatible(format!(
                        "increment at step {cur} names a non-preceding base step {base}"
                    )));
                }
                chain.push(bytes);
                cur = base;
            }
            other => return Err(CheckpointError::UnsupportedVersion(other)),
        }
    }
    let n = chain.len();
    for bytes in chain.into_iter().rev() {
        apply_incremental(sim, meta, &bytes)?;
    }
    Ok(n)
}

// ---------------------------------------------------------------------------
// Files and checkpoint sets
// ---------------------------------------------------------------------------

/// Write `bytes` to `path` atomically: a sibling `.tmp` file is written in
/// full, then renamed over the target, so readers never observe a partial
/// checkpoint.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut tmp_name = path
        .file_name()
        .ok_or_else(|| {
            CheckpointError::Io(std::io::Error::other("checkpoint path has no file name"))
        })?
        .to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Save a simulation to `path` (atomic write).
pub fn save(sim: &Simulation, meta: &RankMeta, path: &Path) -> Result<(), CheckpointError> {
    let _span = pf_trace::span("checkpoint.save");
    let bytes = encode(sim, meta);
    pf_trace::counter("checkpoint.bytes_written").incr(bytes.len() as u64);
    write_atomic(path, &bytes)
}

/// Restore a simulation from `path` (see [`decode_into`] for the checks).
pub fn load(sim: &mut Simulation, meta: &RankMeta, path: &Path) -> Result<(), CheckpointError> {
    decode_into(sim, meta, &std::fs::read(path)?)
}

/// Directory holding one step's per-rank checkpoint set.
pub fn set_dir(root: &Path, step: u64) -> PathBuf {
    root.join(format!("step_{step:08}"))
}

/// One rank's file within a checkpoint set.
pub fn rank_file(root: &Path, step: u64, rank: usize) -> PathBuf {
    set_dir(root, step).join(format!("rank_{rank:04}.ckpt"))
}

/// The newest step under `root` for which all `nranks` rank files exist.
/// Partial sets (a crash mid-checkpoint) are skipped.
pub fn latest_complete_set(root: &Path, nranks: usize) -> Option<u64> {
    let entries = std::fs::read_dir(root).ok()?;
    let mut steps: Vec<u64> = entries
        .flatten()
        .filter_map(|e| {
            e.file_name()
                .to_str()?
                .strip_prefix("step_")?
                .parse::<u64>()
                .ok()
        })
        .collect();
    steps.sort_unstable();
    steps
        .into_iter()
        .rev()
        .find(|&step| (0..nranks).all(|r| rank_file(root, step, r).is_file()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::generate_kernels;
    use crate::sim::SimConfig;
    use pf_ir::GenOptions;

    fn mini_sim() -> Simulation {
        let p = crate::kernels::tests::mini_model();
        let ks = generate_kernels(&p, &GenOptions::default());
        let mut cfg = SimConfig::new([8, 6, 1]);
        cfg.bc = [BcKind::Periodic; 3];
        let mut sim = Simulation::new(p, ks, cfg);
        sim.init_phi(|x, y, _| {
            let solid = if (x + y) % 3 == 0 { 0.8 } else { 0.1 };
            vec![1.0 - solid, solid]
        });
        sim.init_mu(|x, _, _| vec![0.01 * x as f64]);
        sim
    }

    #[test]
    fn encode_decode_round_trip_is_bitwise() {
        let mut sim = mini_sim();
        sim.run_steps(3);
        let meta = RankMeta::single(sim.cfg.shape);
        let bytes = encode(&sim, &meta);

        let mut fresh = mini_sim();
        decode_into(&mut fresh, &meta, &bytes).expect("round trip");
        assert_eq!(fresh.step_count, 3);
        assert_eq!(fresh.phi().max_abs_diff(sim.phi()), 0.0);
        assert_eq!(fresh.mu().max_abs_diff(sim.mu()), 0.0);
        // Re-encoding the restored state reproduces the same bytes.
        assert_eq!(encode(&fresh, &meta), bytes);
    }

    #[test]
    fn header_reports_counter_state() {
        let mut sim = mini_sim();
        sim.run_steps(2);
        let meta = RankMeta::single(sim.cfg.shape);
        let h = parse_header(&encode(&sim, &meta)).expect("header");
        assert_eq!(h.rng, CounterState::new(sim.cfg.seed, 2));
        assert_eq!(h.shape, sim.cfg.shape);
        assert_eq!(h.meta, meta);
    }

    #[test]
    fn truncation_and_corruption_are_typed_errors() {
        let sim = mini_sim();
        let meta = RankMeta::single(sim.cfg.shape);
        let bytes = encode(&sim, &meta);

        let mut fresh = mini_sim();
        for cut in [0, 4, 17, bytes.len() / 2, bytes.len() - 1] {
            match decode_into(&mut fresh, &meta, &bytes[..cut]) {
                Err(CheckpointError::Truncated | CheckpointError::ChecksumMismatch) => {}
                other => panic!("truncated at {cut}: unexpected {other:?}"),
            }
        }
        let mut flipped = bytes.clone();
        flipped[40] ^= 0x01;
        assert!(matches!(
            decode_into(&mut fresh, &meta, &flipped),
            Err(CheckpointError::ChecksumMismatch)
        ));
        // Too short for even a checksum → Truncated; checksum-valid bytes
        // with a foreign magic → BadMagic.
        assert!(matches!(
            decode_into(&mut fresh, &meta, b"short"),
            Err(CheckpointError::Truncated)
        ));
        let mut wrong_magic = bytes[..bytes.len() - 8].to_vec();
        wrong_magic[..8].copy_from_slice(b"NOTACKPT");
        let mut h = Fnv::new();
        h.write(&wrong_magic);
        wrong_magic.extend_from_slice(&h.finish().to_le_bytes());
        assert!(matches!(
            decode_into(&mut fresh, &meta, &wrong_magic),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn wrong_params_or_meta_are_rejected() {
        let sim = mini_sim();
        let meta = RankMeta::single(sim.cfg.shape);
        let bytes = encode(&sim, &meta);

        let mut other = mini_sim();
        other.params.dt *= 2.0;
        assert!(matches!(
            decode_into(&mut other, &meta, &bytes),
            Err(CheckpointError::ParamsMismatch { .. })
        ));

        let mut fresh = mini_sim();
        let wrong_meta = RankMeta {
            rank: 1,
            nranks: 4,
            ..meta
        };
        assert!(matches!(
            decode_into(&mut fresh, &wrong_meta, &bytes),
            Err(CheckpointError::Incompatible(_))
        ));
    }

    #[test]
    fn fingerprint_tracks_every_field_class() {
        let p = crate::kernels::tests::mini_model();
        let base = params_fingerprint(&p);
        let mut q = p.clone();
        q.gamma[0][1] += 1e-9;
        assert_ne!(base, params_fingerprint(&q));
        let mut q = p.clone();
        q.anisotropy = Some(0.1);
        assert_ne!(base, params_fingerprint(&q));
        let mut q = p.clone();
        q.temperature.gradient += 0.5;
        assert_ne!(base, params_fingerprint(&q));
        assert_eq!(base, params_fingerprint(&p.clone()));
    }

    #[test]
    fn incremental_round_trip_is_bitwise() {
        let mut sim = mini_sim();
        sim.run_steps(2);
        let meta = RankMeta::single(sim.cfg.shape);
        let full = encode(&sim, &meta);
        let base = IncrementalBase::capture(&sim);
        sim.run_steps(2);
        let delta = encode_incremental(&sim, &meta, &base);

        let mut fresh = mini_sim();
        decode_into(&mut fresh, &meta, &full).expect("full restore");
        apply_incremental(&mut fresh, &meta, &delta).expect("delta restore");
        assert_eq!(fresh.step_count, 4);
        assert_eq!(fresh.phi().max_abs_diff(sim.phi()), 0.0);
        assert_eq!(fresh.mu().max_abs_diff(sim.mu()), 0.0);
        // Re-encoding the restored state reproduces the writer's bytes.
        assert_eq!(encode(&fresh, &meta), encode(&sim, &meta));
    }

    #[test]
    fn version_one_readers_reject_increments_with_a_typed_error() {
        let mut sim = mini_sim();
        sim.run_steps(1);
        let meta = RankMeta::single(sim.cfg.shape);
        let base = IncrementalBase::capture(&sim);
        sim.run_steps(1);
        let delta = encode_incremental(&sim, &meta, &base);

        let mut fresh = mini_sim();
        assert!(matches!(
            decode_into(&mut fresh, &meta, &delta),
            Err(CheckpointError::UnsupportedVersion(VERSION_INCREMENTAL))
        ));
        assert!(matches!(
            parse_header(&delta),
            Err(CheckpointError::UnsupportedVersion(VERSION_INCREMENTAL))
        ));
        // And the untouched reader leaves the simulation alone.
        assert_eq!(fresh.step_count, 0);
    }

    #[test]
    fn a_clean_state_produces_an_empty_delta() {
        let mut sim = mini_sim();
        sim.run_steps(2);
        let meta = RankMeta::single(sim.cfg.shape);
        let full = encode(&sim, &meta);
        let base = IncrementalBase::capture(&sim);
        // No steps in between: every row is clean, but the step count must
        // still advance for the delta to be applicable — so fake one step
        // of pure bookkeeping.
        sim.step_count += 1;
        let delta = encode_incremental(&sim, &meta, &base);
        assert!(
            delta.len() < 200,
            "empty delta should be header-sized, got {}",
            delta.len()
        );
        assert!(delta.len() < full.len() / 4);

        let mut fresh = mini_sim();
        decode_into(&mut fresh, &meta, &full).expect("full restore");
        apply_incremental(&mut fresh, &meta, &delta).expect("empty delta");
        assert_eq!(fresh.step_count, sim.step_count);
        assert_eq!(fresh.phi().max_abs_diff(sim.phi()), 0.0);
    }

    #[test]
    fn incremental_corruption_and_misapplication_are_typed_errors() {
        let mut sim = mini_sim();
        sim.run_steps(1);
        let meta = RankMeta::single(sim.cfg.shape);
        let full = encode(&sim, &meta);
        let base = IncrementalBase::capture(&sim);
        sim.run_steps(1);
        let delta = encode_incremental(&sim, &meta, &base);

        let mut fresh = mini_sim();
        let mut flipped = delta.clone();
        flipped[60] ^= 0x80;
        assert!(matches!(
            apply_incremental(&mut fresh, &meta, &flipped),
            Err(CheckpointError::ChecksumMismatch)
        ));
        for cut in [0, 9, delta.len() / 2, delta.len() - 1] {
            assert!(matches!(
                apply_incremental(&mut fresh, &meta, &delta[..cut]),
                Err(CheckpointError::Truncated | CheckpointError::ChecksumMismatch)
            ));
        }
        // Applying on top of the wrong base step is refused and leaves the
        // simulation untouched.
        decode_into(&mut fresh, &meta, &full).expect("full restore");
        fresh.step_count += 7;
        let before = encode(&fresh, &meta);
        assert!(matches!(
            apply_incremental(&mut fresh, &meta, &delta),
            Err(CheckpointError::Incompatible(_))
        ));
        assert_eq!(encode(&fresh, &meta), before);
    }

    #[test]
    fn load_chain_replays_increments_back_to_the_full_snapshot() {
        let dir = std::env::temp_dir().join(format!("pfckpt_chain_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut sim = mini_sim();
        let meta = RankMeta::single(sim.cfg.shape);

        sim.run_steps(2);
        save(&sim, &meta, &rank_file(&dir, 2, 0)).expect("full");
        let mut base = IncrementalBase::capture(&sim);
        for step in [4u64, 6] {
            sim.run_steps(2);
            save_incremental(&sim, &meta, &base, &rank_file(&dir, step, 0)).expect("incr");
            base = IncrementalBase::capture(&sim);
        }

        let mut fresh = mini_sim();
        let applied = load_chain(&mut fresh, &meta, &dir, 6, 0).expect("chain");
        assert_eq!(applied, 2);
        assert_eq!(fresh.step_count, 6);
        assert_eq!(fresh.phi().max_abs_diff(sim.phi()), 0.0);
        assert_eq!(fresh.mu().max_abs_diff(sim.mu()), 0.0);

        // A broken link (missing base file) is an error, not silence.
        std::fs::remove_dir_all(set_dir(&dir, 4)).unwrap();
        let mut broken = mini_sim();
        assert!(matches!(
            load_chain(&mut broken, &meta, &dir, 6, 0),
            Err(CheckpointError::Io(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_leaves_no_tmp_behind() {
        let sim = mini_sim();
        let meta = RankMeta::single(sim.cfg.shape);
        let dir = std::env::temp_dir().join(format!("pfckpt_test_{}", std::process::id()));
        let path = dir.join("a.ckpt");
        save(&sim, &meta, &path).expect("save");
        assert!(path.is_file());
        assert!(!path.with_file_name("a.ckpt.tmp").exists());
        let mut fresh = mini_sim();
        load(&mut fresh, &meta, &path).expect("load");
        assert_eq!(fresh.phi().max_abs_diff(sim.phi()), 0.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn latest_complete_set_skips_partial_sets() {
        let dir = std::env::temp_dir().join(format!("pfckpt_sets_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for (step, ranks) in [(10u64, 2usize), (20, 2), (30, 1)] {
            for r in 0..ranks {
                let f = rank_file(&dir, step, r);
                std::fs::create_dir_all(f.parent().unwrap()).unwrap();
                std::fs::write(&f, b"x").unwrap();
            }
        }
        // step 30 is partial (1 of 2 ranks) — the newest complete is 20.
        assert_eq!(latest_complete_set(&dir, 2), Some(20));
        assert_eq!(latest_complete_set(&dir, 1), Some(30));
        assert_eq!(latest_complete_set(&dir.join("missing"), 2), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
