//! Single-block simulation driver — Algorithm 1.
//!
//! ```text
//! 1: φ_dst ← φ-kernel(φ_src^D3C7, µ_src^D3C1)      "φ-full" or "φ-split"
//! 2: φ_dst ← communication and boundary handling
//! 3: µ_dst ← µ-kernel(µ_src^D3C7, φ_src^D3C19, φ_dst^D3C19)
//! 4: µ_dst ← communication and boundary handling
//! 5: swap φ_src ↔ φ_dst and µ_src ↔ µ_dst
//! ```
//!
//! plus the Gibbs-simplex projection the obstacle potential requires. The
//! distributed (multi-rank) variant lives in `dist.rs`; this driver covers
//! one block with periodic/Neumann boundaries.

use crate::kernels::{KernelSet, SplitTapes};
use crate::params::ModelParams;
use pf_backend::{run_kernel, ExecMode, FieldStore, RunCtx};
use pf_fields::{FieldArray, Layout};
use pf_ir::Tape;
use pf_symbolic::Field;

/// Which kernel variant to run for a field update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    Full,
    Split,
}

/// Boundary condition per dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BcKind {
    Periodic,
    /// Zero-gradient.
    Neumann,
}

/// Simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    pub shape: [usize; 3],
    pub phi_variant: Variant,
    pub mu_variant: Variant,
    pub mode: ExecMode,
    pub bc: [BcKind; 3],
    pub seed: u32,
}

impl SimConfig {
    pub fn new(shape: [usize; 3]) -> Self {
        SimConfig {
            shape,
            phi_variant: Variant::Full,
            mu_variant: Variant::Split,
            // Strip-mined vectorized execution when the block is wide
            // enough (bitwise identical to Serial, just faster);
            // overridable via PF_EXEC_MODE.
            mode: crate::select::default_exec_mode(shape),
            bc: [BcKind::Periodic, BcKind::Periodic, BcKind::Neumann],
            seed: 42,
        }
    }
}

/// A running single-block simulation.
pub struct Simulation {
    pub params: ModelParams,
    pub kernels: KernelSet,
    pub cfg: SimConfig,
    pub store: FieldStore,
    pub step_count: u64,
    /// Global origin of this block (nonzero in distributed runs).
    pub origin: [i64; 3],
}

impl Simulation {
    /// Allocate all field storage ([`pf_grid::GHOST_LAYERS`] ghost layers —
    /// the kernels are compact, and pf-analyze's footprint pass proves they
    /// fit) and initialize φ to pure liquid, µ to zero.
    pub fn new(params: ModelParams, kernels: KernelSet, cfg: SimConfig) -> Simulation {
        let mut store = FieldStore::new();
        let f = kernels.fields;
        for field in [f.phi_src, f.phi_dst, f.mu_src, f.mu_dst] {
            store.allocate(field, cfg.shape, pf_grid::GHOST_LAYERS, Layout::Fzyx);
        }
        // Staggered temporaries: +1 cell per dimension, no ghosts.
        let stag_shape = [
            cfg.shape[0] + 1,
            cfg.shape[1] + 1,
            if params.dim == 3 {
                cfg.shape[2] + 1
            } else {
                cfg.shape[2]
            },
        ];
        for sf in [kernels.phi_split.stag_field, kernels.mu_split.stag_field] {
            let arr = FieldArray::new(&sf.name(), stag_shape, sf.components(), 0, Layout::Fzyx);
            store.insert(sf, arr);
        }
        let mut sim = Simulation {
            params,
            kernels,
            cfg,
            store,
            step_count: 0,
            origin: [0; 3],
        };
        // Pure liquid, µ = 0 everywhere.
        let liquid = sim.params.liquid_phase;
        for alpha in 0..sim.params.phases {
            let v = if alpha == liquid { 1.0 } else { 0.0 };
            sim.store.get_mut(f.phi_src).fill_with(alpha, |_, _, _| v);
        }
        sim
    }

    /// Set φ from a per-cell closure returning the phase vector.
    pub fn init_phi(&mut self, mut f: impl FnMut(usize, usize, usize) -> Vec<f64>) {
        let field = self.kernels.fields.phi_src;
        let n = self.params.phases;
        let shape = self.cfg.shape;
        let arr = self.store.get_mut(field);
        for z in 0..shape[2] {
            for y in 0..shape[1] {
                for x in 0..shape[0] {
                    let v = f(x, y, z);
                    assert_eq!(v.len(), n);
                    for (alpha, val) in v.iter().enumerate() {
                        arr.set(alpha, x as isize, y as isize, z as isize, *val);
                    }
                }
            }
        }
        self.project_simplex(field);
    }

    /// Set µ from a per-cell closure.
    pub fn init_mu(&mut self, mut f: impl FnMut(usize, usize, usize) -> Vec<f64>) {
        let field = self.kernels.fields.mu_src;
        let shape = self.cfg.shape;
        let arr = self.store.get_mut(field);
        for z in 0..shape[2] {
            for y in 0..shape[1] {
                for x in 0..shape[0] {
                    let v = f(x, y, z);
                    for (i, val) in v.iter().enumerate() {
                        arr.set(i, x as isize, y as isize, z as isize, *val);
                    }
                }
            }
        }
    }

    /// Apply the configured boundary conditions to one field's ghosts.
    pub fn apply_bc(&mut self, field: Field) {
        let bc = self.cfg.bc;
        let arr = self.store.get_mut(field);
        for (d, kind) in bc.iter().enumerate() {
            match kind {
                BcKind::Periodic => arr.apply_periodic(d),
                BcKind::Neumann => arr.apply_neumann(d),
            }
        }
    }

    /// The execution context of the *next* step.
    pub fn ctx(&self) -> RunCtx {
        RunCtx {
            time: self.step_count as f64 * self.params.dt,
            timestep: self.step_count,
            dx: [self.params.dx; 3],
            origin: self.origin,
            seed: self.cfg.seed,
        }
    }

    /// Run one tape over this block.
    pub fn run(&mut self, tape: &Tape) {
        let ctx = self.ctx();
        run_kernel(
            tape,
            &mut self.store,
            &[],
            self.cfg.shape,
            &ctx,
            self.cfg.mode,
        );
    }

    /// Run one tape over a sub-region of its extended iteration range. The
    /// overlapped distributed schedule uses this to sweep the interior
    /// while halo messages are in flight, then the frontier shells after
    /// the receives complete; cell semantics are keyed on absolute indices,
    /// so the union of region launches is bitwise identical to [`Self::run`].
    pub fn run_region(&mut self, tape: &Tape, region: pf_backend::IterRegion) {
        let ctx = self.ctx();
        // A region too narrow along x to fill one SIMD strip would run
        // entirely in the vectorized engine's scalar teardown loop; the
        // serial engine does the same work without the strip bookkeeping.
        // Engines are bitwise interchangeable, so this is purely speed.
        let mode = match self.cfg.mode {
            ExecMode::Vectorized
                if region.hi[0].saturating_sub(region.lo[0]) < pf_backend::STRIP_WIDTH =>
            {
                ExecMode::Serial
            }
            m => m,
        };
        pf_backend::run_kernel_region(
            tape,
            &mut self.store,
            &[],
            self.cfg.shape,
            region,
            &ctx,
            mode,
        );
    }

    /// Run a split kernel (face passes, then the update pass).
    pub fn run_split(&mut self, split: &SplitTapes) {
        for t in &split.flux_tapes {
            self.run(t);
        }
        self.run(&split.update);
    }

    /// Gibbs-simplex projection: clamp φ_α to [0, 1] and renormalize the
    /// sum to 1 (the obstacle potential is +∞ outside the simplex; the
    /// standard treatment projects after each explicit step).
    pub fn project_simplex(&mut self, field: Field) {
        let n = self.params.phases;
        let shape = self.cfg.shape;
        let arr = self.store.get_mut(field);
        for z in 0..shape[2] as isize {
            for y in 0..shape[1] as isize {
                for x in 0..shape[0] as isize {
                    let mut vals: Vec<f64> = (0..n)
                        .map(|a| arr.get(a, x, y, z).clamp(0.0, 1.0))
                        .collect();
                    let sum: f64 = vals.iter().sum();
                    if sum > 1e-12 {
                        for v in vals.iter_mut() {
                            *v /= sum;
                        }
                    } else {
                        // Degenerate cell: fall back to pure liquid.
                        for (a, v) in vals.iter_mut().enumerate() {
                            *v = if a == self.params.liquid_phase {
                                1.0
                            } else {
                                0.0
                            };
                        }
                    }
                    for (a, v) in vals.iter().enumerate() {
                        arr.set(a, x, y, z, *v);
                    }
                }
            }
        }
    }

    /// One timestep of Algorithm 1.
    pub fn step(&mut self) {
        let f = self.kernels.fields;
        // Ghost layers / boundary handling on the sources.
        self.apply_bc(f.phi_src);
        self.apply_bc(f.mu_src);

        // 1: φ update.
        let phi_split = self.kernels.phi_split.clone();
        let phi_full = self.kernels.phi_full.clone();
        match self.cfg.phi_variant {
            Variant::Full => self.run(&phi_full),
            Variant::Split => self.run_split(&phi_split),
        }
        self.project_simplex(f.phi_dst);
        // 2: boundary handling on φ_dst (the µ kernel reads its neighbours).
        self.apply_bc(f.phi_dst);

        // 3: µ update.
        let mu_split = self.kernels.mu_split.clone();
        let mu_full = self.kernels.mu_full.clone();
        match self.cfg.mu_variant {
            Variant::Full => self.run(&mu_full),
            Variant::Split => self.run_split(&mu_split),
        }

        // 5: swap.
        self.store.swap(f.phi_src, f.phi_dst);
        self.store.swap(f.mu_src, f.mu_dst);
        self.step_count += 1;
    }

    pub fn run_steps(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    pub fn phi(&self) -> &FieldArray {
        self.store.get(self.kernels.fields.phi_src)
    }

    pub fn mu(&self) -> &FieldArray {
        self.store.get(self.kernels.fields.mu_src)
    }

    /// The Philox counter state of the *next* step — together with the
    /// field interiors, the complete persistent RNG state (§3.3: the
    /// generator itself is stateless).
    pub fn rng_state(&self) -> pf_rng::CounterState {
        pf_rng::CounterState::new(self.cfg.seed, self.step_count)
    }

    /// Write this block's restart state to `path` atomically. Single-block
    /// convenience over [`crate::checkpoint::save`]; distributed runs pass
    /// their decomposition's [`crate::checkpoint::RankMeta`] instead.
    pub fn save_checkpoint(
        &self,
        path: &std::path::Path,
    ) -> Result<(), crate::checkpoint::CheckpointError> {
        let meta = crate::checkpoint::RankMeta::single(self.cfg.shape);
        crate::checkpoint::save(self, &meta, path)
    }

    /// Restore this block from `path`, verifying it matches this
    /// simulation's parameters and configuration. The simulation is left
    /// untouched on error.
    pub fn restore_checkpoint(
        &mut self,
        path: &std::path::Path,
    ) -> Result<(), crate::checkpoint::CheckpointError> {
        let meta = crate::checkpoint::RankMeta::single(self.cfg.shape);
        crate::checkpoint::load(self, &meta, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::generate_kernels;
    use pf_ir::GenOptions;

    fn mini_sim(shape: [usize; 3]) -> Simulation {
        let p = crate::kernels::tests::mini_model();
        let ks = generate_kernels(&p, &GenOptions::default());
        let mut cfg = SimConfig::new(shape);
        cfg.bc = [BcKind::Periodic; 3];
        Simulation::new(p, ks, cfg)
    }

    fn seed_circle(sim: &mut Simulation, r: f64) {
        let shape = sim.cfg.shape;
        let (cx, cy) = (shape[0] as f64 / 2.0, shape[1] as f64 / 2.0);
        let eps = sim.params.eps;
        sim.init_phi(|x, y, _| {
            let d = (((x as f64 - cx).powi(2) + (y as f64 - cy).powi(2)).sqrt() - r) / eps;
            let solid = 0.5 * (1.0 - (d).tanh());
            vec![1.0 - solid, solid]
        });
        sim.init_mu(|_, _, _| vec![0.0]);
    }

    #[test]
    fn simplex_invariants_hold_over_steps() {
        let mut sim = mini_sim([16, 16, 1]);
        seed_circle(&mut sim, 5.0);
        sim.run_steps(10);
        let phi = sim.phi();
        for y in 0..16isize {
            for x in 0..16isize {
                let a = phi.get(0, x, y, 0);
                let b = phi.get(1, x, y, 0);
                assert!((0.0..=1.0).contains(&a), "phi0 out of range: {a}");
                assert!((0.0..=1.0).contains(&b), "phi1 out of range: {b}");
                assert!((a + b - 1.0).abs() < 1e-12, "sum violated: {}", a + b);
            }
        }
    }

    #[test]
    fn small_circle_shrinks_under_curvature() {
        let mut sim = mini_sim([32, 32, 1]);
        seed_circle(&mut sim, 8.0);
        let before = sim.phi().interior_sum(1);
        sim.run_steps(100);
        let after = sim.phi().interior_sum(1);
        assert!(
            after < before * 0.98,
            "curvature flow should shrink the solid: {before} → {after}"
        );
        // And nothing blew up.
        assert!(after.is_finite() && after >= 0.0);
    }

    #[test]
    fn full_and_split_variants_agree() {
        let run = |phi_v: Variant, mu_v: Variant| {
            let mut sim = mini_sim([12, 12, 1]);
            sim.cfg.phi_variant = phi_v;
            sim.cfg.mu_variant = mu_v;
            seed_circle(&mut sim, 4.0);
            sim.run_steps(5);
            (sim.phi().clone(), sim.mu().clone())
        };
        let (phi_ff, mu_ff) = run(Variant::Full, Variant::Full);
        let (phi_ss, mu_ss) = run(Variant::Split, Variant::Split);
        let dphi = phi_ff.max_abs_diff(&phi_ss);
        let dmu = mu_ff.max_abs_diff(&mu_ss);
        assert!(dphi < 1e-12, "phi variants diverge: {dphi}");
        assert!(dmu < 1e-12, "mu variants diverge: {dmu}");
    }

    #[test]
    fn serial_and_parallel_steps_agree() {
        let run = |mode| {
            let mut sim = mini_sim([12, 12, 1]);
            sim.cfg.mode = mode;
            seed_circle(&mut sim, 4.0);
            sim.run_steps(3);
            sim.phi().clone()
        };
        let a = run(ExecMode::Serial);
        let b = run(ExecMode::Parallel);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn planar_front_grows_with_driving_force() {
        // Undercooled liquid (µ favouring solid): a planar front advances.
        let mut sim = mini_sim([24, 8, 1]);
        let eps = sim.params.eps;
        sim.init_phi(|x, _, _| {
            let d = (x as f64 - 6.0) / eps;
            let solid = 0.5 * (1.0 - d.tanh());
            vec![1.0 - solid, solid]
        });
        sim.init_mu(|_, _, _| vec![0.4]);
        let before = sim.phi().interior_sum(1);
        sim.run_steps(120);
        let after = sim.phi().interior_sum(1);
        assert!(
            after > before * 1.01,
            "front should advance into undercooled melt: {before} → {after}"
        );
    }
}
