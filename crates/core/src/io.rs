//! Simulation output (the waLBerla post-processing/I/O role, §4.1).
//!
//! Production phase-field runs write fields for visualization; this module
//! provides a legacy-VTK structured-points writer (loadable by ParaView)
//! and a compact ASCII slice dump for quick inspection, both over the
//! interior of a block.

use crate::sim::Simulation;
use pf_fields::FieldArray;
use std::fmt::Write as _;

/// Render one field (all components) as a legacy VTK `STRUCTURED_POINTS`
/// dataset string. `spacing` is the grid spacing.
pub fn to_vtk(name: &str, arr: &FieldArray, spacing: f64) -> String {
    let s = arr.shape();
    let mut out = String::new();
    let _ = writeln!(out, "# vtk DataFile Version 3.0");
    let _ = writeln!(out, "{name} (pf-suite)");
    let _ = writeln!(out, "ASCII");
    let _ = writeln!(out, "DATASET STRUCTURED_POINTS");
    let _ = writeln!(out, "DIMENSIONS {} {} {}", s[0], s[1], s[2]);
    let _ = writeln!(out, "ORIGIN 0 0 0");
    let _ = writeln!(out, "SPACING {spacing} {spacing} {spacing}");
    let _ = writeln!(out, "POINT_DATA {}", s[0] * s[1] * s[2]);
    for comp in 0..arr.components() {
        let _ = writeln!(out, "SCALARS {name}_{comp} double 1");
        let _ = writeln!(out, "LOOKUP_TABLE default");
        for z in 0..s[2] as isize {
            for y in 0..s[1] as isize {
                for x in 0..s[0] as isize {
                    let _ = writeln!(out, "{}", arr.get(comp, x, y, z));
                }
            }
        }
    }
    out
}

/// Write the simulation's φ and µ fields as VTK files under `dir`,
/// suffixed with the current step count.
pub fn write_vtk(
    sim: &Simulation,
    dir: &std::path::Path,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let step = sim.step_count;
    let mut written = Vec::new();
    for (name, arr) in [("phi", sim.phi()), ("mu", sim.mu())] {
        let path = dir.join(format!("{name}_{step:08}.vtk"));
        std::fs::write(&path, to_vtk(name, arr, sim.params.dx))?;
        written.push(path);
    }
    Ok(written)
}

/// ASCII art of one component's z-slice: `#` solid (>0.75), `+` interface,
/// `.` low. Handy in examples and terminal debugging.
pub fn ascii_slice(arr: &FieldArray, comp: usize, z: usize) -> String {
    let s = arr.shape();
    let mut out = String::with_capacity((s[0] + 1) * s[1]);
    for y in (0..s[1] as isize).rev() {
        for x in 0..s[0] as isize {
            let v = arr.get(comp, x, y, z as isize);
            out.push(if v > 0.75 {
                '#'
            } else if v > 0.25 {
                '+'
            } else {
                '.'
            });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_fields::Layout;

    fn sample() -> FieldArray {
        let mut a = FieldArray::new("io_f", [3, 2, 2], 2, 1, Layout::Fzyx);
        a.fill_with(0, |x, y, z| (x + 10 * y + 100 * z) as f64);
        a.fill_with(1, |_, _, _| 0.5);
        a
    }

    #[test]
    fn vtk_header_and_counts() {
        let v = to_vtk("phi", &sample(), 0.5);
        assert!(v.starts_with("# vtk DataFile Version 3.0"));
        assert!(v.contains("DIMENSIONS 3 2 2"));
        assert!(v.contains("POINT_DATA 12"));
        assert!(v.contains("SCALARS phi_0 double 1"));
        assert!(v.contains("SCALARS phi_1 double 1"));
        // 12 values per component + headers.
        let data_lines = v.lines().filter(|l| l.parse::<f64>().is_ok()).count();
        assert_eq!(data_lines, 24);
    }

    #[test]
    fn vtk_is_x_fastest_ordering() {
        let v = to_vtk("f", &sample(), 1.0);
        let nums: Vec<f64> = v.lines().filter_map(|l| l.parse::<f64>().ok()).collect();
        // First row of component 0: x = 0,1,2 at y=z=0.
        assert_eq!(&nums[0..3], &[0.0, 1.0, 2.0]);
        // Next row: y = 1.
        assert_eq!(nums[3], 10.0);
    }

    #[test]
    fn ascii_slice_classifies_levels() {
        let mut a = FieldArray::new("io_a", [3, 1, 1], 1, 1, Layout::Fzyx);
        a.set(0, 0, 0, 0, 0.9);
        a.set(0, 1, 0, 0, 0.5);
        a.set(0, 2, 0, 0, 0.1);
        assert_eq!(ascii_slice(&a, 0, 0), "#+.\n");
    }
}
