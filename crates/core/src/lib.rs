//! `pf-core` — the paper's primary contribution: automatic program
//! generation for thermodynamically consistent phase-field models.
//!
//! The stack, top to bottom (Fig. 1 of the paper):
//!
//! 1. **Energy functional layer** ([`params`], [`model`]): the model is
//!    defined by Ψ(φ,µ,T) = ∫ ε·a(φ,∇φ) + ω(φ)/ε + ψ(φ,µ,T) dV with the
//!    paper's gradient energy, obstacle potential and parabolic
//!    grand-potential fits.
//! 2. **PDE layer** ([`model`]): Allen–Cahn equations from *automatic
//!    variational derivatives* with Lagrange multiplier and Philox
//!    fluctuations; the non-variational µ evolution with mobility and
//!    anti-trapping current.
//! 3. **Discretization / IR / backends** (driven via [`kernels`]): the
//!    `pf-stencil` → `pf-ir` → `pf-backend` pipeline produces the φ/µ
//!    full & split kernel tapes of Algorithm 1.
//! 4. **Execution** ([`sim`], [`dist`]): single-block and distributed
//!    drivers with boundary handling and Gibbs-simplex projection.
//!
//! The benchmark configurations **P1** (4 phases, 3 components, isotropic,
//! analytic temperature gradient) and **P2** (3 phases, 2 components,
//! anisotropic) are provided by [`params::p1`] / [`params::p2`].

#![forbid(unsafe_code)]

pub mod analysis;
pub mod checkpoint;
pub mod dist;
pub mod io;
pub mod kernels;
pub mod model;
pub mod params;
pub mod select;
pub mod sim;
pub mod tune;

pub use checkpoint::{params_fingerprint, CheckpointError, CheckpointHeader, RankMeta};
pub use dist::{dim_classes, overlap_protocol_model, verify_overlap_protocol};
pub use kernels::{
    field_contract, generate_kernels, generate_kernels_from, required_halo_width,
    verify_kernel_set, KernelSet, SplitTapes,
};
pub use model::{build_model, h_interp, temperature_expr, ModelExprs, ModelFields};
pub use params::{p1, p2, ModelParams, TempModel};
pub use select::{default_exec_mode, select_variants, VariantChoice};
pub use sim::{BcKind, SimConfig, Simulation, Variant};
pub use tune::{
    family_fingerprint, mode_name, select_variants_tuned, select_variants_tuned_in, tune_enabled,
    tune_gpu_schedule, tune_kernel_set, tuned_exec_mode, variant_name, ChoiceSource, Family,
    FamilyTuneReport, GpuScheduleChoice, TuneCache, TuneEntry, TuneOptions, TunedChoice,
};
