//! `pf-cluster` — cluster-scale performance simulation.
//!
//! The paper's scaling experiments (Fig. 3) ran on up to half of
//! SuperMUC-NG and 2400 Piz Daint nodes; Table 2 compares communication
//! strategies on 128 GPUs. Those machines are not available here, so this
//! crate prices a timestep of Algorithm 1 analytically on the machine
//! models of `pf-machine`:
//!
//! * per-rank kernel times come from the ECM / GPU models (or measured
//!   executor rates), supplied by the caller;
//! * halo-exchange time = per-phase message latencies (with a topology
//!   term for crossing fat-tree islands / dragonfly groups) + volume over
//!   the injection bandwidth + host staging when GPUDirect is off + the
//!   packing kernel;
//! * the communication-hiding schedule of §4.3 overlaps the µ halo
//!   exchange with the φ kernel and the φ exchange with the inner part of
//!   the µ kernel;
//! * per-rank "system noise" jitter makes the simulated step time the
//!   maximum over ranks, reproducing the mild efficiency loss of real
//!   weak-scaling curves.

#![forbid(unsafe_code)]

use pf_grid::CommOptions;
use pf_machine::{Cluster, NodeKind, Topology};

/// Per-rank workload of one timestep of Algorithm 1.
#[derive(Clone, Copy, Debug)]
pub struct StepWorkload {
    /// φ-kernel compute time, seconds.
    pub t_phi: f64,
    /// µ-kernel compute time, seconds.
    pub t_mu: f64,
    /// Halo bytes exchanged for φ per step (all neighbours).
    pub phi_halo_bytes: u64,
    /// Halo bytes exchanged for µ per step.
    pub mu_halo_bytes: u64,
    /// Cells per rank (for MLUP/s reporting).
    pub cells: u64,
    /// Fraction of the µ kernel that can run on the inner region without
    /// φ ghost values (§4.3: "µ is first updated in the inner part").
    pub mu_inner_fraction: f64,
}

/// Deterministic per-rank jitter in [0, 1): OS noise, clock variation.
fn jitter(rank: usize) -> f64 {
    let mut x = rank as u64 ^ 0x5EED_5EED_5EED_5EED;
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    (x % 10_000) as f64 / 10_000.0
}

/// Relative compute-time noise amplitude (±0.5 %).
const NOISE: f64 = 0.005;

/// Topology congestion/latency factor for a job of `ranks` ranks.
fn topology_factor(cluster: &Cluster, ranks: usize) -> f64 {
    let ranks_per_node = match &cluster.node {
        NodeKind::Cpu { sockets, socket } => sockets * socket.cores,
        NodeKind::Gpu { gpus, .. } => *gpus,
    };
    let nodes = ranks.div_ceil(ranks_per_node);
    match cluster.network.topology {
        Topology::FatTree { nodes_per_island } => {
            if nodes > nodes_per_island {
                1.0 + cluster.network.cross_boundary_latency_us / cluster.network.latency_us
            } else {
                1.0
            }
        }
        Topology::Dragonfly => {
            // Adaptive routing spreads load; mild logarithmic growth.
            1.0 + 0.02 * (nodes.max(1) as f64).log2()
        }
    }
}

/// Halo-exchange cost split into the part that asynchronous MPI can hide
/// behind computation (wire latency + volume + pack kernel) and the part
/// that stays serial on the rank even with overlap (host staging keeps the
/// copy engine and driver busy — exactly why GPUDirect still pays off on
/// top of overlap in Table 2).
pub fn halo_time_parts(
    cluster: &Cluster,
    bytes: u64,
    opts: CommOptions,
    ranks: usize,
) -> (f64, f64) {
    let net = &cluster.network;
    // Three phases, two messages each; phases are serialized.
    let latency = 3.0 * 2.0 * net.latency_us * 1e-6 * topology_factor(cluster, ranks);
    let bw = bytes as f64 / (net.bw_gbs * 1e9);
    // Host staging (no GPUDirect) adds the device-to-host copy of the send
    // buffers over PCIe; GPUDirect sends straight from device memory.
    let staging = match (&cluster.node, opts.gpudirect) {
        (NodeKind::Gpu { .. }, false) => bytes as f64 / (cluster.pcie_bw_gbs * 1e9),
        _ => 0.0,
    };
    let pack = bytes as f64 / 200e9; // memcpy-speed pack/unpack kernels
    (latency + bw + pack, staging)
}

/// Total (blocking) halo-exchange time.
pub fn halo_time(cluster: &Cluster, bytes: u64, opts: CommOptions, ranks: usize) -> f64 {
    let (hidable, serial) = halo_time_parts(cluster, bytes, opts, ranks);
    hidable + serial
}

/// One timestep of Algorithm 1 on a single rank (no noise), honouring the
/// communication-hiding schedule when `opts.overlap` is set.
pub fn rank_step_time(w: &StepWorkload, cluster: &Cluster, opts: CommOptions, ranks: usize) -> f64 {
    let (phi_hide, phi_serial) = halo_time_parts(cluster, w.phi_halo_bytes, opts, ranks);
    let (mu_hide, mu_serial) = halo_time_parts(cluster, w.mu_halo_bytes, opts, ranks);
    if opts.overlap {
        // φ kernel ‖ µ halo exchange, then µ-inner ‖ φ halo exchange,
        // then the µ outer shell. Staging copies never overlap.
        let stage1 = w.t_phi.max(mu_hide) + mu_serial;
        let mu_inner = w.t_mu * w.mu_inner_fraction;
        let mu_outer = w.t_mu - mu_inner;
        let stage2 = mu_inner.max(phi_hide) + phi_serial;
        stage1 + stage2 + mu_outer
    } else {
        w.t_phi + phi_hide + phi_serial + w.t_mu + mu_hide + mu_serial
    }
}

/// Simulated step time across `ranks` ranks: the slowest rank gates the
/// step (bulk-synchronous execution).
pub fn step_time(w: &StepWorkload, cluster: &Cluster, opts: CommOptions, ranks: usize) -> f64 {
    pf_trace::counter("cluster.step_time_evals").incr(1);
    let base = rank_step_time(w, cluster, opts, ranks);
    // Sample the noise maximum over ranks deterministically. The maximum of
    // `ranks` samples approaches the amplitude; evaluate exactly for small
    // counts, asymptotically for large ones.
    let max_jitter = if ranks <= 4096 {
        (0..ranks).map(jitter).fold(0.0, f64::max)
    } else {
        1.0 - 1.0 / ranks as f64
    };
    base * (1.0 + NOISE * max_jitter)
}

/// Per-unit (core/GPU) performance in MLUP/s at a given scale.
pub fn mlups_per_unit(w: &StepWorkload, cluster: &Cluster, opts: CommOptions, ranks: usize) -> f64 {
    let t = step_time(w, cluster, opts, ranks);
    w.cells as f64 / t / 1e6
}

/// Bytes one rank writes per checkpoint: the interior cells of φ and µ as
/// raw f64 plus the fixed-size header/checksum of the checkpoint format.
pub fn checkpoint_bytes_per_rank(shape: [usize; 3], phases: usize, num_mu: usize) -> u64 {
    const HEADER_BYTES: u64 = 128;
    let cells = (shape[0] * shape[1] * shape[2]) as u64;
    cells * (phases + num_mu) as u64 * 8 + HEADER_BYTES
}

fn nodes_for(cluster: &Cluster, ranks: usize) -> usize {
    let ranks_per_node = match &cluster.node {
        NodeKind::Cpu { sockets, socket } => sockets * socket.cores,
        NodeKind::Gpu { gpus, .. } => *gpus,
    };
    ranks.div_ceil(ranks_per_node)
}

/// Wall-clock seconds one checkpoint set takes: every rank drains its bytes
/// to the parallel filesystem, gated by whichever is scarcer — the
/// filesystem's aggregate write bandwidth or the job's combined injection
/// bandwidth into the fabric the I/O servers hang off.
pub fn checkpoint_time(cluster: &Cluster, ranks: usize, bytes_per_rank: u64) -> f64 {
    let total = ranks as f64 * bytes_per_rank as f64;
    let inject = nodes_for(cluster, ranks) as f64 * cluster.network.bw_gbs * 1e9;
    let fs = cluster.fs_bw_gbs * 1e9;
    total / fs.min(inject)
}

/// Fraction of wall-clock time a run spends checkpointing when a set is
/// written every `every` steps (amortized; 0 ≤ result < 1).
pub fn checkpoint_overhead_fraction(
    w: &StepWorkload,
    cluster: &Cluster,
    opts: CommOptions,
    ranks: usize,
    bytes_per_rank: u64,
    every: u64,
) -> f64 {
    assert!(every > 0, "checkpoint interval must be positive");
    let t_ckpt = checkpoint_time(cluster, ranks, bytes_per_rank);
    let t_compute = every as f64 * step_time(w, cluster, opts, ranks);
    t_ckpt / (t_compute + t_ckpt)
}

/// A weak-scaling series: the per-rank workload is constant.
pub fn weak_scaling(
    w: &StepWorkload,
    cluster: &Cluster,
    opts: CommOptions,
    rank_counts: &[usize],
) -> Vec<(usize, f64)> {
    rank_counts
        .iter()
        .map(|&r| (r, mlups_per_unit(w, cluster, opts, r)))
        .collect()
}

/// A strong-scaling series over a fixed global domain: the caller supplies
/// a function producing the per-rank workload for each rank count (block
/// shape and kernel times shrink with the block). Returns
/// `(ranks, MLUP/s per unit, steps per second)` triples.
pub fn strong_scaling(
    cluster: &Cluster,
    opts: CommOptions,
    rank_counts: &[usize],
    mut workload_for: impl FnMut(usize) -> StepWorkload,
) -> Vec<(usize, f64, f64)> {
    rank_counts
        .iter()
        .map(|&r| {
            let w = workload_for(r);
            let t = step_time(&w, cluster, opts, r);
            (r, w.cells as f64 / t / 1e6, 1.0 / t)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_machine::{piz_daint, supermuc_ng};

    fn gpu_workload() -> StepWorkload {
        // 400³ block per GPU (the paper's weak-scaling configuration).
        let cells = 400u64.pow(3);
        StepWorkload {
            t_phi: 0.055,
            t_mu: 0.085,
            phi_halo_bytes: pf_grid::halo_bytes([400, 400, 400], 1, 4),
            mu_halo_bytes: pf_grid::halo_bytes([400, 400, 400], 1, 2),
            cells,
            mu_inner_fraction: 0.9,
        }
    }

    #[test]
    fn overlap_improves_gpu_throughput() {
        let c = piz_daint();
        let w = gpu_workload();
        let base = mlups_per_unit(&w, &c, CommOptions::default(), 128);
        let ov = mlups_per_unit(
            &w,
            &c,
            CommOptions {
                overlap: true,
                gpudirect: false,
                ..CommOptions::default()
            },
            128,
        );
        assert!(ov > base, "{ov} vs {base}");
    }

    #[test]
    fn gpudirect_improves_gpu_throughput() {
        let c = piz_daint();
        let w = gpu_workload();
        for overlap in [false, true] {
            let off = mlups_per_unit(
                &w,
                &c,
                CommOptions {
                    overlap,
                    gpudirect: false,
                    ..CommOptions::default()
                },
                128,
            );
            let on = mlups_per_unit(
                &w,
                &c,
                CommOptions {
                    overlap,
                    gpudirect: true,
                    ..CommOptions::default()
                },
                128,
            );
            assert!(on > off, "overlap={overlap}: {on} vs {off}");
        }
    }

    #[test]
    fn table2_ordering_holds() {
        // 395 (no/no) < 403 (no/yes) < 422 (yes/no) < 440 (yes/yes)
        let c = piz_daint();
        let w = gpu_workload();
        let combo = |overlap, gpudirect| {
            let opts = CommOptions {
                overlap,
                gpudirect,
                ..CommOptions::default()
            };
            mlups_per_unit(&w, &c, opts, 128)
        };
        let (nn, ny, yn, yy) = (
            combo(false, false),
            combo(false, true),
            combo(true, false),
            combo(true, true),
        );
        assert!(nn < ny && ny < yy, "{nn} {ny} {yy}");
        assert!(nn < yn && yn < yy, "{nn} {yn} {yy}");
        assert!(
            yn > ny,
            "overlap should matter more than GPUDirect: {yn} vs {ny}"
        );
    }

    #[test]
    fn weak_scaling_is_nearly_flat() {
        let c = supermuc_ng();
        // 60³ per core.
        let w = StepWorkload {
            t_phi: 0.012,
            t_mu: 0.020,
            phi_halo_bytes: pf_grid::halo_bytes([60, 60, 60], 1, 4),
            mu_halo_bytes: pf_grid::halo_bytes([60, 60, 60], 1, 2),
            cells: 60u64.pow(3),
            mu_inner_fraction: 0.85,
        };
        let series = weak_scaling(
            &w,
            &c,
            CommOptions {
                overlap: true,
                gpudirect: false,
                ..CommOptions::default()
            },
            &[16, 1024, 65_536, 262_144],
        );
        let first = series[0].1;
        let last = series.last().expect("non-empty").1;
        assert!(
            last > 0.9 * first,
            "weak scaling efficiency below 90%: {first} → {last}"
        );
    }

    #[test]
    fn strong_scaling_gains_then_saturates() {
        let c = supermuc_ng();
        // Fixed 512×256×256 domain (Fig. 3 right).
        let total_cells = 512u64 * 256 * 256;
        let series = strong_scaling(
            &c,
            CommOptions {
                overlap: true,
                gpudirect: false,
                ..CommOptions::default()
            },
            &[48, 768, 12_288, 152_064],
            |ranks| {
                let cells = total_cells / ranks as u64;
                let side = (cells as f64).cbrt();
                let s = side.max(2.0) as usize;
                // Kernel time scales with cells at a fixed per-core rate.
                let rate = 6.5e6; // LUP/s per core for the combined kernels
                StepWorkload {
                    t_phi: cells as f64 / rate * 0.4,
                    t_mu: cells as f64 / rate * 0.6,
                    phi_halo_bytes: pf_grid::halo_bytes([s, s, s], 1, 4),
                    mu_halo_bytes: pf_grid::halo_bytes([s, s, s], 1, 2),
                    cells,
                    mu_inner_fraction: 0.8,
                }
            },
        );
        // Steps/s must increase monotonically with rank count …
        for w in series.windows(2) {
            assert!(w[1].2 > w[0].2, "{series:?}");
        }
        // … and reach hundreds of steps per second at full scale (the paper
        // reports 460 steps/s on 152 064 cores).
        let steps_per_s = series.last().expect("non-empty").2;
        assert!(
            steps_per_s > 100.0,
            "full-scale strong scaling too slow: {steps_per_s} steps/s"
        );
    }

    #[test]
    fn noise_makes_bigger_jobs_slightly_slower() {
        let c = supermuc_ng();
        let w = StepWorkload {
            t_phi: 0.01,
            t_mu: 0.02,
            phi_halo_bytes: 1 << 20,
            mu_halo_bytes: 1 << 19,
            cells: 60u64.pow(3),
            mu_inner_fraction: 0.8,
        };
        let t_small = step_time(&w, &c, CommOptions::default(), 2);
        let t_large = step_time(&w, &c, CommOptions::default(), 100_000);
        assert!(t_large >= t_small);
        assert!(t_large < t_small * 1.02, "noise model too aggressive");
    }

    #[test]
    fn checkpoint_bytes_count_all_field_components() {
        // 60³ block, 4 phases + 2 chemical potentials of f64 each.
        let b = checkpoint_bytes_per_rank([60, 60, 60], 4, 2);
        let payload = 60u64.pow(3) * 6 * 8;
        assert!(b > payload && b < payload + 1024, "{b}");
    }

    #[test]
    fn checkpoint_time_at_paper_scale_is_seconds_not_minutes() {
        // Strong-scaling configuration: 152 064 ranks, ~10.4 MB each is a
        // ~1.5 TB set. SuperMUC-NG's GPFS drains that in a few seconds.
        let c = supermuc_ng();
        let b = checkpoint_bytes_per_rank([60, 60, 60], 4, 2);
        let t = checkpoint_time(&c, 152_064, b);
        assert!(t > 1.0 && t < 30.0, "{t} s");
    }

    #[test]
    fn few_nodes_are_injection_limited_not_fs_limited() {
        // A single node cannot saturate a 500 GB/s filesystem; its own
        // injection bandwidth is the bottleneck.
        let c = supermuc_ng();
        let b = 1 << 30; // 1 GiB per rank
        let t_one_node = checkpoint_time(&c, 1, b);
        let expected = b as f64 / (c.network.bw_gbs * 1e9);
        assert!(
            (t_one_node - expected).abs() < expected * 1e-9,
            "{t_one_node} vs {expected}"
        );
    }

    #[test]
    fn checkpoint_overhead_shrinks_with_longer_intervals() {
        let c = supermuc_ng();
        let w = StepWorkload {
            t_phi: 0.01,
            t_mu: 0.02,
            phi_halo_bytes: 1 << 20,
            mu_halo_bytes: 1 << 19,
            cells: 60u64.pow(3),
            mu_inner_fraction: 0.8,
        };
        let b = checkpoint_bytes_per_rank([60, 60, 60], 4, 2);
        let f10 = checkpoint_overhead_fraction(&w, &c, CommOptions::default(), 152_064, b, 10);
        let f100 = checkpoint_overhead_fraction(&w, &c, CommOptions::default(), 152_064, b, 100);
        let f1000 = checkpoint_overhead_fraction(&w, &c, CommOptions::default(), 152_064, b, 1000);
        assert!(f10 > f100 && f100 > f1000, "{f10} {f100} {f1000}");
        assert!(f10 < 1.0 && f1000 > 0.0);
        // Checkpointing every 1000 steps at paper scale stays a modest tax.
        assert!(f1000 < 0.15, "{f1000}");
    }
}
