//! C and CUDA source emission (§3.5 of the paper).
//!
//! "In the final step of the code generation pipeline, our intermediate
//! representation is transformed into C or CUDA code." The native executor
//! in `exec.rs` is what actually runs in this Rust reproduction; the
//! emitters produce the equivalent, human-readable C/OpenMP (optionally
//! with explicit AVX-512 intrinsics) and CUDA sources so the end-to-end
//! artifact of the paper's pipeline — generated code — exists and can be
//! inspected and tested.

use pf_ir::{Tape, TapeOp};
use std::fmt::Write as _;

/// CUDA thread-to-cell mapping strategies (§3.5: "for the mapping of CUDA
/// threads to domain cells several strategies are implemented").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadMapping {
    /// One thread per cell, 3D block `(bx, by, bz)`.
    Block3D { bx: u32, by: u32, bz: u32 },
    /// Linearized 1D indexing over the whole block.
    Linear1D { threads: u32 },
}

impl ThreadMapping {
    pub fn threads_per_block(&self) -> u32 {
        match *self {
            ThreadMapping::Block3D { bx, by, bz } => bx * by * bz,
            ThreadMapping::Linear1D { threads } => threads,
        }
    }
}

fn c_ident(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn field_ptr(tape: &Tape, slot: u16) -> String {
    format!("f_{}", c_ident(&tape.fields[slot as usize].name()))
}

/// Index expression for a field access in emitted code. Strides are passed
/// as kernel arguments `s_<field>_{c,x,y,z}`.
fn index_expr(tape: &Tape, slot: u16, comp: u16, off: [i16; 3], idx: [&str; 3]) -> String {
    let f = c_ident(&tape.fields[slot as usize].name());
    let mut parts = vec![format!("{comp}*s_{f}_c")];
    for (d, iv) in idx.iter().enumerate() {
        if off[d] == 0 {
            parts.push(format!("({iv})*s_{f}_{}", ["x", "y", "z"][d]));
        } else {
            parts.push(format!("({iv} + {})*s_{f}_{}", off[d], ["x", "y", "z"][d]));
        }
    }
    parts.join(" + ")
}

fn scalar_rhs(tape: &Tape, i: usize, op: &TapeOp, idx: [&str; 3], cuda: bool) -> String {
    let r = |v: pf_ir::VReg| format!("r{}", v.0);
    let ap = tape.approx;
    match *op {
        TapeOp::Const(c) => {
            let v = c.0;
            if v == v.trunc() && v.abs() < 1e15 {
                format!("{:.1}", v)
            } else {
                format!("{v:?}")
            }
        }
        TapeOp::Param(p) => format!("p_{}", c_ident(tape.params[p as usize].name())),
        TapeOp::Load { field, comp, off } => format!(
            "{}[{}]",
            field_ptr(tape, field),
            index_expr(tape, field, comp, off, idx)
        ),
        TapeOp::Coord(d) => format!(
            "(origin_{0} + {1} + 0.5)*dx_{0}",
            ["x", "y", "z"][d as usize],
            idx[d as usize]
        ),
        TapeOp::Time => "t".to_owned(),
        TapeOp::CellIdx(d) => format!(
            "(origin_{0} + {1})",
            ["x", "y", "z"][d as usize],
            idx[d as usize]
        ),
        TapeOp::Rand(lane) => format!(
            "philox_pm1(origin_x + {}, origin_y + {}, origin_z + {}, timestep, seed, {lane})",
            idx[0], idx[1], idx[2]
        ),
        TapeOp::Add(a, b) => format!("{} + {}", r(a), r(b)),
        TapeOp::Sub(a, b) => format!("{} - {}", r(a), r(b)),
        TapeOp::Mul(a, b) => format!("{} * {}", r(a), r(b)),
        TapeOp::Div(a, b) => {
            if cuda && ap.fast_div {
                format!("__fdividef((float){}, (float){})", r(a), r(b))
            } else {
                format!("{} / {}", r(a), r(b))
            }
        }
        TapeOp::Neg(a) => format!("-{}", r(a)),
        TapeOp::Sqrt(a) => {
            if cuda && ap.fast_sqrt {
                format!("(double)__fsqrt_rn((float){})", r(a))
            } else {
                format!("sqrt({})", r(a))
            }
        }
        TapeOp::RSqrt(a) => {
            if cuda && ap.fast_rsqrt {
                format!("(double)__frsqrt_rn((float){})", r(a))
            } else {
                format!("1.0 / sqrt({})", r(a))
            }
        }
        TapeOp::Abs(a) => format!("fabs({})", r(a)),
        TapeOp::Min(a, b) => format!("fmin({}, {})", r(a), r(b)),
        TapeOp::Max(a, b) => format!("fmax({}, {})", r(a), r(b)),
        TapeOp::Exp(a) => format!("exp({})", r(a)),
        TapeOp::Ln(a) => format!("log({})", r(a)),
        TapeOp::Sin(a) => format!("sin({})", r(a)),
        TapeOp::Cos(a) => format!("cos({})", r(a)),
        TapeOp::Tanh(a) => format!("tanh({})", r(a)),
        TapeOp::Sign(a) => format!("({0} > 0.0 ? 1.0 : ({0} < 0.0 ? -1.0 : 0.0))", r(a)),
        TapeOp::Floor(a) => format!("floor({})", r(a)),
        TapeOp::Powf(a, b) => format!("pow({}, {})", r(a), r(b)),
        TapeOp::CmpSelect { op, l, r: rr, t, f } => {
            format!("({} {} {} ? {} : {})", r(l), op.symbol(), r(rr), r(t), r(f))
        }
        TapeOp::Store { .. } | TapeOp::Fence => {
            unreachable!("handled by caller (instr {i})")
        }
    }
}

fn emit_instr(out: &mut String, tape: &Tape, i: usize, idx: [&str; 3], indent: &str, cuda: bool) {
    let op = &tape.instrs[i];
    match op {
        TapeOp::Store {
            field,
            comp,
            off,
            val,
        } => {
            let _ = writeln!(
                out,
                "{indent}{}[{}] = r{};",
                field_ptr(tape, *field),
                index_expr(tape, *field, *comp, *off, idx),
                val.0
            );
        }
        TapeOp::Fence => {
            if cuda {
                let _ = writeln!(out, "{indent}__threadfence();");
            } else {
                let _ = writeln!(out, "{indent}/* scheduling fence */");
            }
        }
        _ => {
            let _ = writeln!(
                out,
                "{indent}const double r{i} = {};",
                scalar_rhs(tape, i, op, idx, cuda)
            );
        }
    }
}

fn signature(tape: &Tape) -> String {
    let mut args: Vec<String> = Vec::new();
    for f in &tape.fields {
        let n = c_ident(&f.name());
        args.push(format!("double* restrict f_{n}"));
        args.push(format!(
            "const long s_{n}_c, const long s_{n}_x, const long s_{n}_y, const long s_{n}_z"
        ));
    }
    for p in &tape.params {
        args.push(format!("const double p_{}", c_ident(p.name())));
    }
    args.push("const long nx, const long ny, const long nz".to_owned());
    args.push("const long origin_x, const long origin_y, const long origin_z".to_owned());
    args.push("const double dx_x, const double dx_y, const double dx_z".to_owned());
    args.push("const double t, const unsigned long timestep, const unsigned seed".to_owned());
    args.join(",\n        ")
}

/// Emit an OpenMP-parallel C kernel.
pub fn emit_c(tape: &Tape) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// generated by pf-backend — kernel `{}`", tape.name);
    let _ = writeln!(out, "#include <math.h>");
    let _ = writeln!(out, "#include \"philox.h\"");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "void kernel_{}(\n        {})\n{{",
        c_ident(&tape.name),
        signature(tape)
    );

    let order = tape.loop_order;
    let names = ["ix", "iy", "iz"];
    let bounds = ["nx", "ny", "nz"];
    let idx: [&str; 3] = [names[0], names[1], names[2]];
    let sec = level_sections(tape);

    // Level-0 instructions: before all loops.
    for i in 0..sec[0] {
        emit_instr(&mut out, tape, i, idx, "    ", false);
    }

    let loop_line = |d: usize, extra: usize| {
        format!(
            "for (long {n} = 0; {n} < {b}{e}; ++{n}) {{",
            n = names[d],
            b = bounds[d],
            e = if extra > 0 {
                format!(" + {extra}")
            } else {
                String::new()
            }
        )
    };

    let _ = writeln!(
        out,
        "    #pragma omp parallel for schedule(static)\n    {}",
        loop_line(order[0], tape.iter_extent[order[0]])
    );
    for i in sec[0]..sec[1] {
        emit_instr(&mut out, tape, i, idx, "        ", false);
    }
    let _ = writeln!(
        out,
        "        {}",
        loop_line(order[1], tape.iter_extent[order[1]])
    );
    for i in sec[1]..sec[2] {
        emit_instr(&mut out, tape, i, idx, "            ", false);
    }
    let _ = writeln!(
        out,
        "            #pragma omp simd\n            {}",
        loop_line(order[2], tape.iter_extent[order[2]])
    );
    for i in sec[2]..tape.instrs.len() {
        emit_instr(&mut out, tape, i, idx, "                ", false);
    }
    let _ = writeln!(out, "            }}\n        }}\n    }}\n}}");
    out
}

/// Emit a CUDA `__global__` kernel with the chosen thread mapping.
pub fn emit_cuda(tape: &Tape, mapping: ThreadMapping) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// generated by pf-backend — CUDA kernel `{}`",
        tape.name
    );
    let _ = writeln!(out, "#include \"philox.cuh\"");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "__global__ void kernel_{}(\n        {})\n{{",
        c_ident(&tape.name),
        signature(tape).replace("restrict", "__restrict__")
    );
    match mapping {
        ThreadMapping::Block3D { .. } => {
            let _ = writeln!(
                out,
                "    const long ix = blockIdx.x * blockDim.x + threadIdx.x;\n    \
                 const long iy = blockIdx.y * blockDim.y + threadIdx.y;\n    \
                 const long iz = blockIdx.z * blockDim.z + threadIdx.z;"
            );
        }
        ThreadMapping::Linear1D { .. } => {
            let _ = writeln!(
                out,
                "    const long tid = blockIdx.x * blockDim.x + threadIdx.x;\n    \
                 const long ix = tid % (nx + {ex});\n    \
                 const long iy = (tid / (nx + {ex})) % (ny + {ey});\n    \
                 const long iz = tid / ((nx + {ex}) * (ny + {ey}));",
                ex = tape.iter_extent[0],
                ey = tape.iter_extent[1]
            );
        }
    }
    let _ = writeln!(
        out,
        "    if (ix >= nx + {} || iy >= ny + {} || iz >= nz + {}) return;",
        tape.iter_extent[0], tape.iter_extent[1], tape.iter_extent[2]
    );
    let idx: [&str; 3] = ["ix", "iy", "iz"];
    for i in 0..tape.instrs.len() {
        emit_instr(&mut out, tape, i, idx, "    ", true);
    }
    let _ = writeln!(out, "}}");
    out
}

fn level_sections(tape: &Tape) -> [usize; 3] {
    let monotone = tape.levels.windows(2).all(|w| w[0] <= w[1]);
    if !monotone {
        return [0, 0, 0];
    }
    let pos = |lvl: usize| {
        tape.levels
            .iter()
            .position(|&l| l as usize > lvl)
            .unwrap_or(tape.instrs.len())
    };
    [pos(0), pos(1), pos(2)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_ir::{generate, GenOptions};
    use pf_stencil::{Assignment, Discretization, StencilKernel};
    use pf_symbolic::{Access, Expr, Field};

    fn sample_tape(approx: bool) -> Tape {
        let src = Field::new("em_src", 1, 3);
        let dst = Field::new("em_dst", 1, 3);
        let disc = Discretization::isotropic(3, 0.1);
        let u = Expr::access(Access::center(src, 0));
        let temp = Expr::sym("em_T0") + Expr::sym("em_G") * Expr::coord(2);
        let rhs: Expr = (0..3)
            .map(|d| Expr::d(temp.clone() * Expr::d(u.clone(), d), d))
            .sum::<Expr>()
            + Expr::rsqrt(u.clone() + 2.0)
            + Expr::rand(0) * 0.001;
        let update = disc.explicit_euler(Access::center(src, 0), &rhs, 1e-3);
        let k = StencilKernel::new(
            "em_heat",
            vec![Assignment::store(Access::center(dst, 0), update)],
        );
        let mut t = generate(&k, &GenOptions::default());
        if approx {
            t.approx.fast_div = true;
            t.approx.fast_rsqrt = true;
        }
        t
    }

    #[test]
    fn c_kernel_has_openmp_and_hoisted_temperature() {
        let tape = sample_tape(false);
        let src = emit_c(&tape);
        assert!(src.contains("#pragma omp parallel for"), "{src}");
        assert!(src.contains("void kernel_em_heat"));
        // The temperature chain must be emitted before the innermost loop:
        // p_em_G appears textually before the `#pragma omp simd`.
        let g_pos = src.find("p_em_G").expect("uses G");
        let simd_pos = src.find("#pragma omp simd").expect("simd pragma");
        assert!(g_pos < simd_pos, "temperature not hoisted:\n{src}");
    }

    #[test]
    fn c_kernel_compiles_philox_call_for_fluctuations() {
        let src = emit_c(&sample_tape(false));
        assert!(src.contains("philox_pm1("), "{src}");
    }

    #[test]
    fn cuda_kernel_has_bounds_check_and_mapping() {
        let tape = sample_tape(false);
        let src = emit_cuda(
            &tape,
            ThreadMapping::Block3D {
                bx: 8,
                by: 8,
                bz: 4,
            },
        );
        assert!(src.contains("__global__ void kernel_em_heat"));
        assert!(src.contains("blockIdx.x * blockDim.x + threadIdx.x"));
        assert!(src.contains("if (ix >= nx"));
    }

    #[test]
    fn cuda_linear_mapping_linearizes() {
        let tape = sample_tape(false);
        let src = emit_cuda(&tape, ThreadMapping::Linear1D { threads: 256 });
        assert!(src.contains("const long tid"), "{src}");
    }

    #[test]
    fn approx_ops_emit_cuda_intrinsics() {
        let tape = sample_tape(true);
        let src = emit_cuda(&tape, ThreadMapping::Linear1D { threads: 128 });
        assert!(src.contains("__frsqrt_rn"), "{src}");
    }

    #[test]
    fn exact_mode_emits_plain_math() {
        let tape = sample_tape(false);
        let src = emit_cuda(&tape, ThreadMapping::Linear1D { threads: 128 });
        assert!(!src.contains("__frsqrt_rn"));
        assert!(src.contains("sqrt("));
    }

    #[test]
    fn fences_emit_threadfence_in_cuda() {
        let tape = sample_tape(false);
        let fenced = pf_ir::insert_fences(&tape, 10);
        let src = emit_cuda(&fenced, ThreadMapping::Linear1D { threads: 128 });
        assert!(src.contains("__threadfence();"), "{src}");
    }

    #[test]
    fn every_register_is_defined_before_use() {
        let tape = sample_tape(false);
        let src = emit_c(&tape);
        // r<N> definitions appear in increasing textual order, so a simple
        // scan suffices: every "rN" use must have seen "const double rN".
        let mut defined = std::collections::HashSet::new();
        for line in src.lines() {
            if let Some(rest) = line.trim().strip_prefix("const double r") {
                if let Some(end) = rest.find(' ') {
                    if let Ok(n) = rest[..end].parse::<u32>() {
                        defined.insert(n);
                    }
                }
            }
        }
        for (i, op) in tape.instrs.iter().enumerate() {
            for a in op.args() {
                assert!(defined.contains(&a.0), "instr {i} uses undefined r{}", a.0);
            }
        }
    }
}
