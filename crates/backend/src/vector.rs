//! Strip-mined vectorized tape execution.
//!
//! The paper's CPU backend emits explicitly vectorized kernels: "the
//! innermost loop is processed in chunks of the vector width, with a scalar
//! remainder loop" (§3.5). This module is the interpreter-side equivalent:
//! instead of dispatching the tape once per cell, it walks x-strips of
//! [`STRIP_WIDTH`] cells and executes each instruction over all lanes of
//! the strip before moving to the next instruction — amortizing dispatch
//! cost W-fold and turning unit-stride loads/stores into contiguous slice
//! copies.
//!
//! Layout: one flat SoA scratch buffer `regs[W * n_instrs]`, the value of
//! instruction `i` in lane `l` living at `regs[i*W + l]`. Hoisted level
//! sections (loop-invariant scalar arithmetic) are evaluated once at the
//! right loop depth and broadcast into all lanes, so per-cell instructions
//! never need to know whether an argument was hoisted. The remainder
//! (`ext_x % W` cells) runs through a scalar tear-down loop over lane 0.
//! Philox lanes are generated per strip from the stateless per-cell
//! counters, so results are bitwise identical to serial execution.
//!
//! Parallelism: the outer spatial loop is split into cache-blocked slabs
//! (a few per worker), each task sweeping whole (mid × x) planes; scratch
//! buffers are created once per worker (`for_each_init`) instead of once
//! per outer index.

use crate::exec::{f32_div, f32_rsqrt, f32_sqrt, Plan, RawSlice, RunCtx, Step};
use pf_grid::IterRegion;
use pf_ir::{Tape, TapeOp};
use pf_rng::CellRng;
use rayon::prelude::*;

/// Strip width W: f64 lanes of the widest supported ISA (AVX-512).
pub const STRIP_WIDTH: usize = crate::simd::SimdIsa::Avx512.lanes();

const W: usize = STRIP_WIDTH;

/// Execute the resolved plan over a region of the extended domain with the
/// strip engine. Caller guarantees `tape.loop_order[2] == 0` (x innermost)
/// and centre stores along `loop_order[0]` (slab disjointness). Strips are
/// phased from `region.lo[0]`; since every instruction is evaluated
/// per-cell from absolute coordinates, strip phasing never changes values,
/// so region launches stay bitwise identical to full sweeps.
pub(crate) fn run_vectorized(
    tape: &Tape,
    plan: &Plan,
    params: &[f64],
    ctx: &RunCtx,
    region: IterRegion,
    read_data: &[&[f64]],
    raw: &[RawSlice],
) {
    let order = tape.loop_order;
    let outer_lo = region.lo[order[0]];
    let outer_n = region.hi[order[0]].saturating_sub(outer_lo);
    if outer_n == 0 {
        return;
    }
    // Cache-blocked slabs: a few contiguous outer-index ranges per worker
    // (load balance without per-index task overhead).
    let workers = rayon::current_num_threads().max(1);
    let slab = outer_n.div_ceil(workers * 4).max(1);
    let n_slabs = outer_n.div_ceil(slab);
    let n_regs = tape.instrs.len();
    (0..n_slabs).into_par_iter().for_each_init(
        || vec![0.0f64; n_regs * W],
        |regs, si| {
            let cur = StripCursor {
                tape,
                plan,
                params,
                ctx,
                region,
                rng: CellRng::new(ctx.seed),
            };
            // Sweep-invariant section, once per slab.
            cur.exec_hoisted(regs, read_data, 0, plan.sec[0], [0; 3]);
            let lo = outer_lo + si * slab;
            let hi = (lo + slab).min(outer_lo + outer_n);
            for o in lo..hi {
                cur.run_outer(regs, read_data, raw, o);
            }
        },
    );
}

/// Loop driver holding the per-launch constants (strip-engine analogue of
/// the scalar `CellCursor`).
struct StripCursor<'a> {
    tape: &'a Tape,
    plan: &'a Plan,
    params: &'a [f64],
    ctx: &'a RunCtx,
    region: IterRegion,
    rng: CellRng,
}

impl StripCursor<'_> {
    /// One outer-loop iteration: hoisted sections at their depths, then the
    /// inner x loop in strips of W plus a scalar remainder.
    fn run_outer(&self, regs: &mut [f64], read_data: &[&[f64]], raw: &[RawSlice], o: usize) {
        let order = self.tape.loop_order;
        let [s0, s1, s2, s3] = self.plan.sec;
        let mut idx3 = [0usize; 3];
        idx3[order[0]] = o;
        self.exec_hoisted(regs, read_data, s0, s1, idx3);
        let x_lo = self.region.lo[0];
        let x_hi = self.region.hi[0];
        for m in self.region.lo[order[1]]..self.region.hi[order[1]] {
            idx3[order[1]] = m;
            self.exec_hoisted(regs, read_data, s1, s2, idx3);
            let mut x = x_lo;
            while x + W <= x_hi {
                idx3[0] = x;
                self.exec_strip(regs, read_data, raw, s2, s3, idx3);
                x += W;
            }
            // Scalar tear-down loop for the remainder strip.
            while x < x_hi {
                idx3[0] = x;
                self.exec_teardown(regs, read_data, raw, s2, s3, idx3);
                x += 1;
            }
        }
    }

    /// Evaluate one step scalar-wise, reading arguments from lane 0.
    /// Returns the value plus the (array, index) target if it is a store.
    #[inline]
    fn eval_scalar(
        &self,
        regs: &[f64],
        read_data: &[&[f64]],
        i: usize,
        idx3: [usize; 3],
    ) -> (f64, Option<(usize, usize)>) {
        let ctx = self.ctx;
        let approx = self.tape.approx;
        let r = |a: pf_ir::VReg| regs[a.0 as usize * W];
        match self.plan.steps[i] {
            Step::Op(op) => {
                let v = match op {
                    TapeOp::Const(c) => c.0,
                    TapeOp::Param(p) => self.params[p as usize],
                    TapeOp::Coord(d) => {
                        let dd = d as usize;
                        (ctx.origin[dd] as f64 + idx3[dd] as f64 + 0.5) * ctx.dx[dd]
                    }
                    TapeOp::Time => ctx.time,
                    TapeOp::CellIdx(d) => {
                        let dd = d as usize;
                        ctx.origin[dd] as f64 + idx3[dd] as f64
                    }
                    TapeOp::Rand(lane) => self.rng.uniform_pm1(
                        [
                            ctx.origin[0] + idx3[0] as i64,
                            ctx.origin[1] + idx3[1] as i64,
                            ctx.origin[2] + idx3[2] as i64,
                        ],
                        ctx.timestep,
                        lane as u32,
                    ),
                    TapeOp::Add(a, b) => r(a) + r(b),
                    TapeOp::Sub(a, b) => r(a) - r(b),
                    TapeOp::Mul(a, b) => r(a) * r(b),
                    TapeOp::Div(a, b) => {
                        if approx.fast_div {
                            f32_div(r(a), r(b))
                        } else {
                            r(a) / r(b)
                        }
                    }
                    TapeOp::Neg(a) => -r(a),
                    TapeOp::Sqrt(a) => {
                        if approx.fast_sqrt {
                            f32_sqrt(r(a))
                        } else {
                            r(a).sqrt()
                        }
                    }
                    TapeOp::RSqrt(a) => {
                        if approx.fast_rsqrt {
                            f32_rsqrt(r(a))
                        } else {
                            1.0 / r(a).sqrt()
                        }
                    }
                    TapeOp::Abs(a) => r(a).abs(),
                    TapeOp::Min(a, b) => r(a).min(r(b)),
                    TapeOp::Max(a, b) => r(a).max(r(b)),
                    TapeOp::Exp(a) => r(a).exp(),
                    TapeOp::Ln(a) => r(a).ln(),
                    TapeOp::Sin(a) => r(a).sin(),
                    TapeOp::Cos(a) => r(a).cos(),
                    TapeOp::Tanh(a) => r(a).tanh(),
                    TapeOp::Sign(a) => {
                        let x = r(a);
                        if x > 0.0 {
                            1.0
                        } else if x < 0.0 {
                            -1.0
                        } else {
                            0.0
                        }
                    }
                    TapeOp::Floor(a) => r(a).floor(),
                    TapeOp::Powf(a, b) => r(a).powf(r(b)),
                    TapeOp::CmpSelect { op, l, r: rr, t, f } => {
                        if op.eval(r(l), r(rr)) {
                            r(t)
                        } else {
                            r(f)
                        }
                    }
                    TapeOp::Fence => 0.0,
                    TapeOp::Load { .. } | TapeOp::Store { .. } => {
                        unreachable!("resolved in plan")
                    }
                };
                (v, None)
            }
            Step::Load { arr, delta } => {
                let a = arr as usize;
                let s = self.plan.read_strides[a];
                let idx = self.plan.read_base[a]
                    + idx3[0] as isize * s[0]
                    + idx3[1] as isize * s[1]
                    + idx3[2] as isize * s[2]
                    + delta;
                (read_data[a][idx as usize], None)
            }
            Step::Store { arr, delta, val } => {
                let a = arr as usize;
                let s = self.plan.write_strides[a];
                let idx = self.plan.write_base[a]
                    + idx3[0] as isize * s[0]
                    + idx3[1] as isize * s[1]
                    + idx3[2] as isize * s[2]
                    + delta;
                (regs[val as usize * W], Some((a, idx as usize)))
            }
        }
    }

    /// Hoisted (loop-invariant) section: evaluate scalar, broadcast into
    /// all W lanes so per-cell instructions can read any argument lane-wise.
    fn exec_hoisted(
        &self,
        regs: &mut [f64],
        read_data: &[&[f64]],
        from: usize,
        to: usize,
        idx3: [usize; 3],
    ) {
        for i in from..to {
            let (v, store) = self.eval_scalar(regs, read_data, i, idx3);
            debug_assert!(
                store.is_none(),
                "stores are per-cell (level 3) by construction"
            );
            regs[i * W..(i + 1) * W].fill(v);
        }
    }

    /// Scalar remainder loop over lane 0 (hoisted arguments are broadcast,
    /// so lane 0 always holds their value).
    fn exec_teardown(
        &self,
        regs: &mut [f64],
        read_data: &[&[f64]],
        raw: &[RawSlice],
        from: usize,
        to: usize,
        idx3: [usize; 3],
    ) {
        for i in from..to {
            let (v, store) = self.eval_scalar(regs, read_data, i, idx3);
            if let Some((a, idx)) = store {
                // SAFETY: index in bounds by plan construction; remainder
                // cells belong to exactly one slab (disjointness is the
                // same centre-store argument as the parallel scalar path).
                unsafe { raw[a].write(idx, v) };
            }
            regs[i * W] = v;
        }
    }

    /// The vector body: one full strip of W cells at `idx3` (x = idx3[0] +
    /// lane). Each instruction is evaluated across all lanes before the
    /// next dispatches; unit-stride loads/stores are slice copies.
    fn exec_strip(
        &self,
        regs: &mut [f64],
        read_data: &[&[f64]],
        raw: &[RawSlice],
        from: usize,
        to: usize,
        idx3: [usize; 3],
    ) {
        let ctx = self.ctx;
        let approx = self.tape.approx;
        for i in from..to {
            // SSA: every argument of instruction i is defined before i, so
            // splitting at i*W gives disjoint arg (shared) / dst (mut)
            // views into the flat SoA buffer.
            let (prev, rest) = regs.split_at_mut(i * W);
            let dst = &mut rest[..W];
            let arg = |a: pf_ir::VReg| -> &[f64] { &prev[a.0 as usize * W..][..W] };
            match self.plan.steps[i] {
                Step::Load { arr, delta } => {
                    let a = arr as usize;
                    let s = self.plan.read_strides[a];
                    let idx = (self.plan.read_base[a]
                        + idx3[0] as isize * s[0]
                        + idx3[1] as isize * s[1]
                        + idx3[2] as isize * s[2]
                        + delta) as usize;
                    if s[0] == 1 {
                        dst.copy_from_slice(&read_data[a][idx..idx + W]);
                    } else {
                        for (l, d) in dst.iter_mut().enumerate() {
                            *d = read_data[a][idx + l * s[0] as usize];
                        }
                    }
                }
                Step::Store { arr, delta, val } => {
                    let a = arr as usize;
                    let s = self.plan.write_strides[a];
                    let idx = (self.plan.write_base[a]
                        + idx3[0] as isize * s[0]
                        + idx3[1] as isize * s[1]
                        + idx3[2] as isize * s[2]
                        + delta) as usize;
                    let v = arg(pf_ir::VReg(val));
                    // SAFETY: distinct slabs write disjoint outer indices
                    // (centre stores along the outer loop, checked at
                    // launch); indices in bounds by plan construction.
                    if s[0] == 1 {
                        unsafe { raw[a].write_strip(idx, v) };
                    } else {
                        for (l, &x) in v.iter().enumerate() {
                            unsafe { raw[a].write(idx + l * s[0] as usize, x) };
                        }
                    }
                    dst.copy_from_slice(v);
                }
                Step::Op(op) => match op {
                    TapeOp::Const(c) => dst.fill(c.0),
                    TapeOp::Param(p) => dst.fill(self.params[p as usize]),
                    TapeOp::Time => dst.fill(ctx.time),
                    TapeOp::Coord(d) => {
                        let dd = d as usize;
                        if dd == 0 {
                            for (l, v) in dst.iter_mut().enumerate() {
                                *v =
                                    (ctx.origin[0] as f64 + (idx3[0] + l) as f64 + 0.5) * ctx.dx[0];
                            }
                        } else {
                            dst.fill((ctx.origin[dd] as f64 + idx3[dd] as f64 + 0.5) * ctx.dx[dd]);
                        }
                    }
                    TapeOp::CellIdx(d) => {
                        let dd = d as usize;
                        if dd == 0 {
                            for (l, v) in dst.iter_mut().enumerate() {
                                *v = ctx.origin[0] as f64 + (idx3[0] + l) as f64;
                            }
                        } else {
                            dst.fill(ctx.origin[dd] as f64 + idx3[dd] as f64);
                        }
                    }
                    TapeOp::Rand(lane) => {
                        // Philox is stateless per cell: lane l of the strip
                        // is exactly the value serial execution produces at
                        // x + l, so vectorized noise is bitwise identical.
                        for (l, v) in dst.iter_mut().enumerate() {
                            *v = self.rng.uniform_pm1(
                                [
                                    ctx.origin[0] + (idx3[0] + l) as i64,
                                    ctx.origin[1] + idx3[1] as i64,
                                    ctx.origin[2] + idx3[2] as i64,
                                ],
                                ctx.timestep,
                                lane as u32,
                            );
                        }
                    }
                    TapeOp::Add(a, b) => {
                        let (a, b) = (arg(a), arg(b));
                        for l in 0..W {
                            dst[l] = a[l] + b[l];
                        }
                    }
                    TapeOp::Sub(a, b) => {
                        let (a, b) = (arg(a), arg(b));
                        for l in 0..W {
                            dst[l] = a[l] - b[l];
                        }
                    }
                    TapeOp::Mul(a, b) => {
                        let (a, b) = (arg(a), arg(b));
                        for l in 0..W {
                            dst[l] = a[l] * b[l];
                        }
                    }
                    TapeOp::Div(a, b) => {
                        let (a, b) = (arg(a), arg(b));
                        if approx.fast_div {
                            for l in 0..W {
                                dst[l] = f32_div(a[l], b[l]);
                            }
                        } else {
                            for l in 0..W {
                                dst[l] = a[l] / b[l];
                            }
                        }
                    }
                    TapeOp::Neg(a) => {
                        let a = arg(a);
                        for l in 0..W {
                            dst[l] = -a[l];
                        }
                    }
                    TapeOp::Sqrt(a) => {
                        let a = arg(a);
                        if approx.fast_sqrt {
                            for l in 0..W {
                                dst[l] = f32_sqrt(a[l]);
                            }
                        } else {
                            for l in 0..W {
                                dst[l] = a[l].sqrt();
                            }
                        }
                    }
                    TapeOp::RSqrt(a) => {
                        let a = arg(a);
                        if approx.fast_rsqrt {
                            for l in 0..W {
                                dst[l] = f32_rsqrt(a[l]);
                            }
                        } else {
                            for l in 0..W {
                                dst[l] = 1.0 / a[l].sqrt();
                            }
                        }
                    }
                    TapeOp::Abs(a) => {
                        let a = arg(a);
                        for l in 0..W {
                            dst[l] = a[l].abs();
                        }
                    }
                    TapeOp::Min(a, b) => {
                        let (a, b) = (arg(a), arg(b));
                        for l in 0..W {
                            dst[l] = a[l].min(b[l]);
                        }
                    }
                    TapeOp::Max(a, b) => {
                        let (a, b) = (arg(a), arg(b));
                        for l in 0..W {
                            dst[l] = a[l].max(b[l]);
                        }
                    }
                    TapeOp::Exp(a) => {
                        let a = arg(a);
                        for l in 0..W {
                            dst[l] = a[l].exp();
                        }
                    }
                    TapeOp::Ln(a) => {
                        let a = arg(a);
                        for l in 0..W {
                            dst[l] = a[l].ln();
                        }
                    }
                    TapeOp::Sin(a) => {
                        let a = arg(a);
                        for l in 0..W {
                            dst[l] = a[l].sin();
                        }
                    }
                    TapeOp::Cos(a) => {
                        let a = arg(a);
                        for l in 0..W {
                            dst[l] = a[l].cos();
                        }
                    }
                    TapeOp::Tanh(a) => {
                        let a = arg(a);
                        for l in 0..W {
                            dst[l] = a[l].tanh();
                        }
                    }
                    TapeOp::Sign(a) => {
                        let a = arg(a);
                        for l in 0..W {
                            dst[l] = if a[l] > 0.0 {
                                1.0
                            } else if a[l] < 0.0 {
                                -1.0
                            } else {
                                0.0
                            };
                        }
                    }
                    TapeOp::Floor(a) => {
                        let a = arg(a);
                        for l in 0..W {
                            dst[l] = a[l].floor();
                        }
                    }
                    TapeOp::Powf(a, b) => {
                        let (a, b) = (arg(a), arg(b));
                        for l in 0..W {
                            dst[l] = a[l].powf(b[l]);
                        }
                    }
                    TapeOp::CmpSelect { op, l, r, t, f } => {
                        let (lv, rv, tv, fv) = (arg(l), arg(r), arg(t), arg(f));
                        for i in 0..W {
                            dst[i] = if op.eval(lv[i], rv[i]) { tv[i] } else { fv[i] };
                        }
                    }
                    TapeOp::Fence => dst.fill(0.0),
                    TapeOp::Load { .. } | TapeOp::Store { .. } => {
                        unreachable!("resolved in plan")
                    }
                },
            }
        }
    }
}
