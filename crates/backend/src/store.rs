//! Binding symbolic fields to storage.
//!
//! A [`FieldStore`] owns the `FieldArray`s of one block and maps the
//! symbolic `Field` handles appearing in tapes to them. Kernels never see
//! names — binding is by handle, established once when the block is set up.

use pf_fields::{FieldArray, Layout};
use pf_symbolic::Field;
use std::collections::HashMap;

/// Owns all arrays of one block.
#[derive(Default, Debug)]
pub struct FieldStore {
    map: HashMap<u32, FieldArray>,
}

impl FieldStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate storage for `field` with the given interior shape and ghost
    /// layers and bind it.
    pub fn allocate(
        &mut self,
        field: Field,
        shape: [usize; 3],
        ghost: usize,
        layout: Layout,
    ) -> &mut FieldArray {
        let arr = FieldArray::new(&field.name(), shape, field.components(), ghost, layout);
        self.map.insert(field.id(), arr);
        self.map.get_mut(&field.id()).expect("just inserted")
    }

    /// Bind an existing array (e.g. a staggered temporary).
    pub fn insert(&mut self, field: Field, arr: FieldArray) {
        assert_eq!(
            arr.components(),
            field.components(),
            "component mismatch binding {}",
            field.name()
        );
        self.map.insert(field.id(), arr);
    }

    pub fn get(&self, field: Field) -> &FieldArray {
        self.map
            .get(&field.id())
            .unwrap_or_else(|| panic!("field {} not bound", field.name()))
    }

    pub fn get_mut(&mut self, field: Field) -> &mut FieldArray {
        self.map
            .get_mut(&field.id())
            .unwrap_or_else(|| panic!("field {} not bound", field.name()))
    }

    pub fn contains(&self, field: Field) -> bool {
        self.map.contains_key(&field.id())
    }

    /// Temporarily remove an array (the executor takes write arrays out to
    /// split borrows); must be re-inserted afterwards.
    pub fn take(&mut self, field: Field) -> FieldArray {
        self.map
            .remove(&field.id())
            .unwrap_or_else(|| panic!("field {} not bound", field.name()))
    }

    /// Swap the storage of two fields (src/dst exchange at end of timestep).
    pub fn swap(&mut self, a: Field, b: Field) {
        let mut arr_a = self.take(a);
        let arr_b = self.get_mut(b);
        arr_a.swap(arr_b);
        self.map.insert(a.id(), arr_a);
    }

    pub fn fields(&self) -> impl Iterator<Item = u32> + '_ {
        self.map.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_get_roundtrip() {
        let f = Field::new("st_f", 2, 3);
        let mut s = FieldStore::new();
        s.allocate(f, [4, 4, 4], 1, Layout::Fzyx);
        s.get_mut(f).set(1, 0, 0, 0, 3.5);
        assert_eq!(s.get(f).get(1, 0, 0, 0), 3.5);
    }

    #[test]
    fn swap_moves_data_between_fields() {
        let a = Field::new("st_a", 1, 3);
        let b = Field::new("st_b", 1, 3);
        let mut s = FieldStore::new();
        s.allocate(a, [2, 2, 2], 1, Layout::Fzyx).fill(1.0);
        s.allocate(b, [2, 2, 2], 1, Layout::Fzyx).fill(2.0);
        s.swap(a, b);
        assert_eq!(s.get(a).get(0, 0, 0, 0), 2.0);
        assert_eq!(s.get(b).get(0, 0, 0, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "not bound")]
    fn unbound_field_panics() {
        let f = Field::new("st_unbound", 1, 3);
        FieldStore::new().get(f);
    }
}
