//! `pf-backend` — kernel backends (§3.5 of the paper).
//!
//! Three consumers of the optimized kernel tape:
//!
//! * [`run_kernel`] — the native executor: the tape interpreted over real
//!   field arrays — serially, rayon-parallel (the OpenMP analogue), or
//!   strip-mined over x-strips of [`STRIP_WIDTH`] cells (the explicitly
//!   vectorized kernels of §3.5). This is what simulations and benchmarks
//!   in this reproduction actually run.
//! * [`emit_c`] — readable C/OpenMP source, with LICM-hoisted sections
//!   placed at the right loop depths.
//! * [`emit_cuda`] — CUDA source with selectable thread-to-cell mappings,
//!   `__threadfence()` scheduling fences, and approximate-math intrinsics
//!   (`__fdividef`, `__frsqrt_rn`).
//! * [`crate::native`] — the paper's actual pipeline closed end to end:
//!   the tape emitted as Rust source, compiled to a cdylib with `rustc`,
//!   loaded with `dlopen` and dispatched through a typed C ABI
//!   ([`ExecMode::Native`]), bitwise identical to the interpreters.

mod emit;
mod exec;
pub mod native;
mod simd;
mod store;
mod vector;

pub use emit::{emit_c, emit_cuda, ThreadMapping};
pub use exec::{
    extended_range, run_kernel, run_kernel_checked, run_kernel_region, run_kernel_region_checked,
    time_tapes, ExecError, ExecMode, RunCtx,
};
pub use native::{
    clear_memory_cache, emit_rust, native_available, native_cache_dir, source_fingerprint,
};
pub use pf_grid::IterRegion;
pub use simd::{emit_c_simd, SimdIsa};
pub use store::FieldStore;
pub use vector::STRIP_WIDTH;
