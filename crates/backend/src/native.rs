//! Native code generation backend: the paper's actual modus operandi.
//!
//! The interpreters in `exec.rs`/`vector.rs` execute the tape one dispatch
//! per instruction; the paper's pipeline instead *generates* source,
//! compiles it, and runs the machine code. This module closes that loop
//! inside the reproduction: each verified tape is emitted as a
//! self-contained Rust source file (reusing the LICM level-section
//! structure that `emit_c` prints), compiled to a cdylib with the
//! in-container `rustc`, loaded with `dlopen`, and dispatched through a
//! typed `extern "C"` ABI.
//!
//! Bitwise identity with the interpreters is a hard contract
//! (`tests/native_equivalence.rs`): the generated source performs exactly
//! the interpreter's f64 operation sequence per cell — constants are
//! reproduced via `f64::from_bits`, the Philox 4x32-10 generator is inlined
//! textually (integer ops are exact), and `rustc` contracts nothing
//! without fast-math flags. Hoisted sections evaluate with not-yet-entered
//! loop indices pinned to 0, exactly like `CellCursor`.
//!
//! ## Caching
//!
//! The generated source depends only on the tape, so compiled artifacts
//! are keyed by [`Tape::structural_hash`] alone — geometry (strides, base
//! offsets, region bounds) enters through the runtime argument pack, which
//! is why the ABI is stride-based rather than shape-templated. Artifacts
//! live in `PF_NATIVE_CACHE_DIR` (default: `<tmp>/pf-native-cache`) as
//! `pf_<hash>.so` next to their source, installed by atomic rename so
//! concurrent processes race benignly. A loaded artifact must export a
//! `pf_meta` symbol returning the FNV-1a fingerprint of the source this
//! emitter would generate — a stale artifact (older emitter, wrong tape)
//! fails the check and is recompiled; a corrupt one fails `dlopen` and is
//! recompiled too. In-process, function pointers are cached in a global
//! map for the process lifetime (handles are never `dlclose`d).
//!
//! Counters: `exec.native.mem_hit` (in-process reuse),
//! `exec.native.compile_hit` (valid disk artifact loaded),
//! `exec.native.compile_miss` (rustc invoked), `exec.native.compile_fail`
//! (launches that could not obtain a native kernel), `exec.native.stale`
//! (disk artifact rejected and replaced).

use crate::exec::{ExecError, RunCtx};
use pf_fields::FieldArray;
use pf_grid::IterRegion;
use pf_ir::{Tape, TapeOp};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::os::raw::{c_char, c_int, c_void};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

// Raw glibc dynamic-loader bindings — no crates, links against libc which
// is already in every Rust binary on this platform.
extern "C" {
    fn dlopen(filename: *const c_char, flag: c_int) -> *mut c_void;
    fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
    fn dlerror() -> *mut c_char;
}

const RTLD_NOW: c_int = 2;

/// Bumped whenever the ABI below changes shape; folded into the source
/// fingerprint so old artifacts self-invalidate.
const ABI_TAG: &str = "pf-native-abi/1";

/// One field argument: raw data pointer plus the linear offset of cell
/// (comp 0, 0,0,0) and the [comp, x, y, z] strides. Geometry travels here,
/// at call time — the compiled code is shape-agnostic.
#[repr(C)]
pub(crate) struct NativeField {
    pub ptr: *mut f64,
    pub base: i64,
    pub stride: [i64; 4],
}

/// The generated kernel entry point. Returns 0 on success; nonzero codes
/// are ABI mismatches detected before any store is executed.
pub(crate) type PfKernelFn = unsafe extern "C" fn(
    fields: *const NativeField,
    n_fields: u64,
    params: *const f64,
    n_params: u64,
    lo: *const u64,
    hi: *const u64,
    origin: *const i64,
    dx: *const f64,
    time: f64,
    timestep: u64,
    seed: u32,
    n_threads: u64,
) -> i32;

enum CacheEntry {
    Ready {
        func: PfKernelFn,
        /// Source fingerprint recorded at load; debug builds re-render on
        /// every hit to expose structural_hash collisions (two different
        /// tapes hashing equal would silently run the wrong machine code).
        #[cfg(debug_assertions)]
        fingerprint: u64,
    },
    /// Negative cache: rustc already failed for this tape under this
    /// compiler path. Re-keyed on the rustc path so tests (or operators)
    /// can repair `PF_NATIVE_RUSTC` without restarting the process.
    Failed { rustc: String, detail: String },
}

// SAFETY: PfKernelFn is a plain code pointer into a never-unloaded dylib.
unsafe impl Send for CacheEntry {}

fn cache() -> &'static Mutex<HashMap<u64, CacheEntry>> {
    static CACHE: OnceLock<Mutex<HashMap<u64, CacheEntry>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The compiler used for kernel cdylibs (`PF_NATIVE_RUSTC` override; the
/// tests point it at a nonexistent binary to force the fallback path).
fn rustc_path() -> String {
    std::env::var("PF_NATIVE_RUSTC").unwrap_or_else(|_| "rustc".to_string())
}

/// On-disk artifact directory (`PF_NATIVE_CACHE_DIR` override — the tests
/// use per-test temp dirs so parallel runs never race on artifacts).
pub fn native_cache_dir() -> PathBuf {
    std::env::var_os("PF_NATIVE_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("pf-native-cache"))
}

fn bump(name: &str) {
    if pf_trace::enabled() {
        pf_trace::counter(name).incr(1);
    }
}

/// FNV-1a 64 — tiny, dependency-free, stable across processes (unlike
/// `DefaultHasher` it is specified, so it can live inside the artifact).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of the source this emitter renders for `tape` — the value
/// the artifact's `pf_meta` export must return to be accepted.
pub fn source_fingerprint(tape: &Tape) -> u64 {
    fnv1a(emit_body(tape).as_bytes())
}

/// The complete generated source for `tape` (body + meta export).
pub fn emit_rust(tape: &Tape) -> String {
    let body = emit_body(tape);
    let meta = fnv1a(body.as_bytes());
    format!("{body}\n#[no_mangle]\npub extern \"C\" fn pf_meta() -> u64 {{ 0x{meta:016x}u64 }}\n")
}

/// Loop-position index tokens: dimension `d`'s index variable once `depth`
/// loops are open, or a literal 0 for loops not yet entered — matching the
/// interpreter, whose hoisted sections run with `idx3` zeroed for inner
/// dimensions.
fn idx_token(order: [usize; 3], depth: usize, d: usize) -> &'static str {
    let pos = order.iter().position(|&o| o == d).expect("permutation");
    if pos < depth {
        ["i0", "i1", "i2"][pos]
    } else {
        "0"
    }
}

/// `base + comp·s[0] + Σ (idx+off)·s[d+1]` as i64 source.
fn index_expr(slot: u16, comp: u16, off: [i16; 3], order: [usize; 3], depth: usize) -> String {
    let mut s = format!("fb{slot}");
    if comp != 0 {
        let _ = write!(s, " + {comp} * fs{slot}[0]");
    }
    for (d, &o) in off.iter().enumerate() {
        let tok = idx_token(order, depth, d);
        let idx = if tok == "0" {
            "0i64".to_string()
        } else {
            format!("{tok} as i64")
        };
        match o {
            0 => {
                let _ = write!(s, " + ({idx}) * fs{slot}[{}]", d + 1);
            }
            o => {
                let _ = write!(s, " + ({idx} + ({o})) * fs{slot}[{}]", d + 1);
            }
        }
    }
    s
}

/// Right-hand side of instruction `i` at loop `depth`. Mirrors
/// `CellCursor::exec_section_rw` operation for operation.
fn rhs(tape: &Tape, op: &TapeOp, order: [usize; 3], depth: usize) -> String {
    let r = |v: pf_ir::VReg| format!("r{}", v.0);
    let ap = tape.approx;
    let coord_idx = |d: u8| {
        let tok = idx_token(order, depth, d as usize);
        if tok == "0" {
            "0.0f64".to_string()
        } else {
            format!("{tok} as f64")
        }
    };
    match *op {
        TapeOp::Const(c) => format!(
            "f64::from_bits(0x{:016x}u64) /* {:?} */",
            c.0.to_bits(),
            c.0
        ),
        TapeOp::Param(p) => format!("params[{p}]"),
        TapeOp::Load { field, comp, off } => format!(
            "*f{field}.offset(({}) as isize)",
            index_expr(field, comp, off, order, depth)
        ),
        TapeOp::Coord(d) => format!(
            "(origin[{0}] as f64 + {1} + 0.5) * dx[{0}]",
            d as usize,
            coord_idx(d)
        ),
        TapeOp::Time => "time".into(),
        TapeOp::CellIdx(d) => format!("origin[{0}] as f64 + {1}", d as usize, coord_idx(d)),
        TapeOp::Rand(lane) => {
            let cell = |d: usize| {
                let tok = idx_token(order, depth, d);
                if tok == "0" {
                    format!("origin[{d}]")
                } else {
                    format!("origin[{d}] + {tok} as i64")
                }
            };
            format!(
                "pf_rand_pm1([{}, {}, {}], timestep, seed, {lane})",
                cell(0),
                cell(1),
                cell(2)
            )
        }
        TapeOp::Add(a, b) => format!("{} + {}", r(a), r(b)),
        TapeOp::Sub(a, b) => format!("{} - {}", r(a), r(b)),
        TapeOp::Mul(a, b) => format!("{} * {}", r(a), r(b)),
        TapeOp::Div(a, b) => {
            if ap.fast_div {
                format!("pf_f32_div({}, {})", r(a), r(b))
            } else {
                format!("{} / {}", r(a), r(b))
            }
        }
        TapeOp::Neg(a) => format!("-{}", r(a)),
        TapeOp::Sqrt(a) => {
            if ap.fast_sqrt {
                format!("pf_f32_sqrt({})", r(a))
            } else {
                format!("{}.sqrt()", r(a))
            }
        }
        TapeOp::RSqrt(a) => {
            if ap.fast_rsqrt {
                format!("pf_f32_rsqrt({})", r(a))
            } else {
                format!("1.0 / {}.sqrt()", r(a))
            }
        }
        TapeOp::Abs(a) => format!("{}.abs()", r(a)),
        TapeOp::Min(a, b) => format!("{}.min({})", r(a), r(b)),
        TapeOp::Max(a, b) => format!("{}.max({})", r(a), r(b)),
        TapeOp::Exp(a) => format!("{}.exp()", r(a)),
        TapeOp::Ln(a) => format!("{}.ln()", r(a)),
        TapeOp::Sin(a) => format!("{}.sin()", r(a)),
        TapeOp::Cos(a) => format!("{}.cos()", r(a)),
        TapeOp::Tanh(a) => format!("{}.tanh()", r(a)),
        TapeOp::Sign(a) => format!(
            "if {0} > 0.0 {{ 1.0 }} else if {0} < 0.0 {{ -1.0 }} else {{ 0.0 }}",
            r(a)
        ),
        TapeOp::Floor(a) => format!("{}.floor()", r(a)),
        TapeOp::Powf(a, b) => format!("{}.powf({})", r(a), r(b)),
        TapeOp::CmpSelect { op, l, r: rr, t, f } => format!(
            "if {} {} {} {{ {} }} else {{ {} }}",
            r(l),
            op.symbol(),
            r(rr),
            r(t),
            r(f)
        ),
        TapeOp::Fence => "0.0f64".into(),
        TapeOp::Store { .. } => unreachable!("stores are emitted as statements"),
    }
}

fn emit_instr(out: &mut String, tape: &Tape, i: usize, order: [usize; 3], depth: usize) {
    let indent = "    ".repeat(depth + 1);
    match tape.instrs[i] {
        TapeOp::Store {
            field,
            comp,
            off,
            val,
        } => {
            if depth > 0 {
                let _ = writeln!(
                    out,
                    "{indent}*f{field}.offset(({}) as isize) = r{};",
                    index_expr(field, comp, off, order, depth),
                    val.0
                );
            }
            // else: the interpreter discards stores in the launch-invariant
            // section (they never occur in practice — the levels pass pins
            // stores per-cell). Either way the store's register carries the
            // stored value, exactly like `regs[i] = v`.
            let _ = writeln!(out, "{indent}let r{i}: f64 = r{};", val.0);
        }
        ref op => {
            let _ = writeln!(
                out,
                "{indent}let r{i}: f64 = {};",
                rhs(tape, op, order, depth)
            );
        }
    }
}

/// Level-section boundaries, identical to the interpreter's `Plan::sec`
/// logic: usable only when levels are monotone; a GPU-rescheduled tape
/// collapses every section into the per-cell loop.
fn level_sections(tape: &Tape) -> [usize; 3] {
    let monotone = tape.levels.windows(2).all(|w| w[0] <= w[1]);
    if !monotone {
        return [0, 0, 0];
    }
    let pos = |lvl: usize| {
        tape.levels
            .iter()
            .position(|&l| l as usize > lvl)
            .unwrap_or(tape.instrs.len())
    };
    [pos(0), pos(1), pos(2)]
}

/// Generated source body: Philox + approx-math preamble, the ABI structs,
/// the loop-nest body and the `pf_kernel` entry point.
fn emit_body(tape: &Tape) -> String {
    let order = tape.loop_order;
    let n_fields = tape.fields.len();
    let n_params = tape.params.len();
    let sec = level_sections(tape);
    let n = tape.instrs.len();

    let mut s = String::with_capacity(8192);
    let _ = writeln!(
        s,
        "// generated by pf-backend native — kernel `{}`",
        tape.name
    );
    let _ = writeln!(
        s,
        "// {ABI_TAG}; structural_hash 0x{:016x}",
        tape.structural_hash()
    );
    let _ = writeln!(
        s,
        "#![allow(unused_variables, unused_parens, unused_mut, dead_code, unused_unsafe)]\n"
    );
    // ABI structs.
    let _ = writeln!(
        s,
        "#[repr(C)]\npub struct PfField {{ pub ptr: *mut f64, pub base: i64, pub stride: [i64; 4] }}\n\
         unsafe impl Send for PfField {{}}\n\
         unsafe impl Sync for PfField {{}}\n"
    );
    // Philox 4x32-10, textually identical to pf-rng (integer ops: exact).
    s.push_str(
        "const PHILOX_M0: u32 = 0xD251_1F53;\n\
         const PHILOX_M1: u32 = 0xCD9E_8D57;\n\
         const PHILOX_W0: u32 = 0x9E37_79B9;\n\
         const PHILOX_W1: u32 = 0xBB67_AE85;\n\
         #[inline(always)]\n\
         fn mulhilo(a: u32, b: u32) -> (u32, u32) {\n\
             let p = (a as u64) * (b as u64);\n\
             ((p >> 32) as u32, p as u32)\n\
         }\n\
         #[inline(always)]\n\
         fn philox_round(ctr: [u32; 4], key: [u32; 2]) -> [u32; 4] {\n\
             let (hi0, lo0) = mulhilo(PHILOX_M0, ctr[0]);\n\
             let (hi1, lo1) = mulhilo(PHILOX_M1, ctr[2]);\n\
             [hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0]\n\
         }\n\
         #[inline(always)]\n\
         fn philox4x32(mut ctr: [u32; 4], mut key: [u32; 2]) -> [u32; 4] {\n\
             for r in 0..10u32 {\n\
                 if r > 0 {\n\
                     key = [key[0].wrapping_add(PHILOX_W0), key[1].wrapping_add(PHILOX_W1)];\n\
                 }\n\
                 ctr = philox_round(ctr, key);\n\
             }\n\
             ctr\n\
         }\n\
         #[inline(always)]\n\
         fn pf_rand_pm1(cell: [i64; 3], timestep: u64, seed: u32, lane: u32) -> f64 {\n\
             let ctr = [cell[0] as u32, cell[1] as u32, cell[2] as u32, timestep as u32];\n\
             let hi_mix = ((cell[0] as u64 >> 32) as u32)\n\
                 ^ ((cell[1] as u64 >> 32) as u32).rotate_left(11)\n\
                 ^ ((cell[2] as u64 >> 32) as u32).rotate_left(22)\n\
                 ^ ((timestep >> 32) as u32).rotate_left(7);\n\
             let r = philox4x32(ctr, [seed ^ hi_mix, lane]);\n\
             let bits = ((r[0] as u64) << 32) | r[1] as u64;\n\
             2.0 * ((bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) - 1.0\n\
         }\n\
         #[inline(always)]\n\
         fn pf_f32_div(a: f64, b: f64) -> f64 { (a as f32 / b as f32) as f64 }\n\
         #[inline(always)]\n\
         fn pf_f32_sqrt(a: f64) -> f64 { (a as f32).sqrt() as f64 }\n\
         #[inline(always)]\n\
         fn pf_f32_rsqrt(a: f64) -> f64 { (1.0 / (a as f32).sqrt()) as f64 }\n\n",
    );

    // The loop-nest body over one outer-loop chunk.
    let _ = writeln!(
        s,
        "unsafe fn pf_body(\n    fields: &[PfField; {n_fields}],\n    params: &[f64; {n_params}],\n    \
         lo: [usize; 3], hi: [usize; 3],\n    outer_lo: usize, outer_hi: usize,\n    \
         origin: [i64; 3], dx: [f64; 3],\n    time: f64, timestep: u64, seed: u32,\n) {{"
    );
    for f in 0..n_fields {
        let _ = writeln!(
            s,
            "    let f{f} = fields[{f}].ptr;\n    let fb{f} = fields[{f}].base;\n    let fs{f} = fields[{f}].stride;"
        );
    }
    // Section 0: launch-invariant.
    for i in 0..sec[0] {
        emit_instr(&mut s, tape, i, order, 0);
    }
    let _ = writeln!(s, "    for i0 in outer_lo..outer_hi {{");
    for i in sec[0]..sec[1] {
        emit_instr(&mut s, tape, i, order, 1);
    }
    let _ = writeln!(s, "        for i1 in lo[{0}]..hi[{0}] {{", order[1]);
    for i in sec[1]..sec[2] {
        emit_instr(&mut s, tape, i, order, 2);
    }
    let _ = writeln!(s, "            for i2 in lo[{0}]..hi[{0}] {{", order[2]);
    for i in sec[2]..n {
        emit_instr(&mut s, tape, i, order, 3);
    }
    let _ = writeln!(s, "            }}\n        }}\n    }}\n}}\n");

    // Entry point: ABI checks, then serial or outer-slab-threaded dispatch.
    // Any outer-chunk split is bitwise-neutral: cell semantics are keyed on
    // absolute indices and stores hit the centre cell along the outer
    // dimension (enforced by the host before native dispatch).
    let _ = writeln!(
        s,
        "#[no_mangle]\npub unsafe extern \"C\" fn pf_kernel(\n    \
         fields: *const PfField, n_fields: u64,\n    \
         params: *const f64, n_params: u64,\n    \
         lo: *const u64, hi: *const u64,\n    \
         origin: *const i64, dx: *const f64,\n    \
         time: f64, timestep: u64, seed: u32,\n    n_threads: u64,\n) -> i32 {{\n    \
         if n_fields != {n_fields} {{ return 1; }}\n    \
         if n_params != {n_params} {{ return 2; }}\n    \
         let fields: &[PfField; {n_fields}] = &*(fields as *const [PfField; {n_fields}]);"
    );
    if n_params > 0 {
        let _ = writeln!(
            s,
            "    let params: &[f64; {n_params}] = &*(params as *const [f64; {n_params}]);"
        );
    } else {
        let _ = writeln!(s, "    let params: &[f64; 0] = &[];");
    }
    let _ = writeln!(
        s,
        "    let lo = [*lo.add(0) as usize, *lo.add(1) as usize, *lo.add(2) as usize];\n    \
         let hi = [*hi.add(0) as usize, *hi.add(1) as usize, *hi.add(2) as usize];\n    \
         let origin = [*origin.add(0), *origin.add(1), *origin.add(2)];\n    \
         let dx = [*dx.add(0), *dx.add(1), *dx.add(2)];\n    \
         let o_lo = lo[{0}];\n    let o_hi = hi[{0}];\n    \
         let span = o_hi.saturating_sub(o_lo);\n    \
         let nt = if n_threads == 0 {{ 1 }} else {{ n_threads as usize }}.min(span.max(1));\n    \
         if nt <= 1 {{\n        \
         pf_body(fields, params, lo, hi, o_lo, o_hi, origin, dx, time, timestep, seed);\n    \
         }} else {{\n        \
         let chunk = span.div_ceil(nt);\n        \
         std::thread::scope(|sc| {{\n            \
         for t in 0..nt {{\n                \
         let a = o_lo + t * chunk;\n                \
         let b = (a + chunk).min(o_hi);\n                \
         if a >= b {{ continue; }}\n                \
         sc.spawn(move || unsafe {{\n                    \
         pf_body(fields, params, lo, hi, a, b, origin, dx, time, timestep, seed)\n                \
         }});\n            \
         }}\n        \
         }});\n    \
         }}\n    0\n}}",
        order[0]
    );
    s
}

/// Remove a file when the guard drops (the transient load link).
struct RemoveOnDrop(PathBuf);

impl Drop for RemoveOnDrop {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn scopeguard_remove(p: &Path) -> RemoveOnDrop {
    RemoveOnDrop(p.to_path_buf())
}

fn last_dl_error() -> String {
    unsafe {
        let e = dlerror();
        if e.is_null() {
            "unknown dlopen error".into()
        } else {
            std::ffi::CStr::from_ptr(e).to_string_lossy().into_owned()
        }
    }
}

/// dlopen `path` and resolve (`pf_kernel`, `pf_meta()`); errors are
/// descriptive strings. The handle is intentionally leaked: kernel code
/// must stay mapped for the process lifetime (function pointers escape
/// into the cache).
///
/// The artifact is opened through a process-unique hard link that is
/// unlinked immediately after (the mapping survives). glibc deduplicates
/// `dlopen` by *pathname* before looking at the file, so reopening
/// `pf_<hash>.so` after a recompile+rename would silently return the old,
/// stale mapping; a unique name defeats that, while glibc's secondary
/// dev/inode check still dedupes genuinely identical artifacts.
fn load_artifact(path: &Path) -> Result<(PfKernelFn, u64), String> {
    use std::os::unix::ffi::OsStrExt;
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let link = path.with_extension(format!(
        "open.{}.{}.so",
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    std::fs::hard_link(path, &link)
        .or_else(|_| std::fs::copy(path, &link).map(|_| ()))
        .map_err(|e| format!("link artifact for load: {e}"))?;
    let c = std::ffi::CString::new(link.as_os_str().as_bytes())
        .map_err(|_| "artifact path contains NUL".to_string())?;
    let _unlink = scopeguard_remove(&link);
    unsafe {
        dlerror(); // clear any stale error
        let h = dlopen(c.as_ptr(), RTLD_NOW);
        if h.is_null() {
            return Err(format!("dlopen failed: {}", last_dl_error()));
        }
        let meta_sym = dlsym(h, c"pf_meta".as_ptr());
        if meta_sym.is_null() {
            return Err("artifact exports no pf_meta symbol".into());
        }
        let kern_sym = dlsym(h, c"pf_kernel".as_ptr());
        if kern_sym.is_null() {
            return Err("artifact exports no pf_kernel symbol".into());
        }
        let meta_fn: extern "C" fn() -> u64 = std::mem::transmute(meta_sym);
        let func: PfKernelFn = std::mem::transmute(kern_sym);
        Ok((func, meta_fn()))
    }
}

/// Compile `src` to a cdylib at `dst` with the configured rustc, via a
/// process-unique temp name + atomic rename.
fn compile(src_path: &Path, dst: &Path, rustc: &str) -> Result<(), String> {
    let tmp = dst.with_extension(format!("tmp.{}.so", std::process::id()));
    let out = std::process::Command::new(rustc)
        .arg("--edition")
        .arg("2021")
        .arg("-O")
        .arg("--crate-type")
        .arg("cdylib")
        .arg("-o")
        .arg(&tmp)
        .arg(src_path)
        .output()
        .map_err(|e| format!("failed to run rustc '{rustc}': {e}"))?;
    if !out.status.success() {
        let _ = std::fs::remove_file(&tmp);
        let stderr = String::from_utf8_lossy(&out.stderr);
        let excerpt: String = stderr.chars().take(600).collect();
        return Err(format!("rustc failed ({}): {excerpt}", out.status));
    }
    std::fs::rename(&tmp, dst).map_err(|e| format!("install artifact: {e}"))?;
    Ok(())
}

/// Resolve the compiled kernel for `tape`: in-memory cache, then the disk
/// artifact (validated against the source fingerprint), then a fresh
/// compile. Failures are negatively cached per rustc path and surface as
/// [`ExecError::NativeCompile`].
pub(crate) fn get_or_load(tape: &Tape) -> Result<PfKernelFn, ExecError> {
    let hash = tape.structural_hash();
    let mut map = cache().lock().unwrap_or_else(|p| p.into_inner());
    let rustc = rustc_path();
    match map.get(&hash) {
        Some(CacheEntry::Ready { func, .. }) => {
            bump("exec.native.mem_hit");
            #[cfg(debug_assertions)]
            {
                if let Some(CacheEntry::Ready { fingerprint, .. }) = map.get(&hash) {
                    debug_assert_eq!(
                        *fingerprint,
                        source_fingerprint(tape),
                        "structural_hash collision: tape '{}' hashes 0x{hash:016x} but \
                         renders different source than the cached kernel",
                        tape.name
                    );
                }
            }
            return Ok(*func);
        }
        Some(CacheEntry::Failed { rustc: r, detail }) if *r == rustc => {
            bump("exec.native.compile_fail");
            return Err(ExecError::NativeCompile {
                kernel: tape.name.clone(),
                detail: detail.clone(),
            });
        }
        _ => {}
    }

    let fail = |map: &mut HashMap<u64, CacheEntry>, detail: String| {
        bump("exec.native.compile_fail");
        map.insert(
            hash,
            CacheEntry::Failed {
                rustc: rustc.clone(),
                detail: detail.clone(),
            },
        );
        Err(ExecError::NativeCompile {
            kernel: tape.name.clone(),
            detail,
        })
    };

    let dir = native_cache_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        return fail(&mut map, format!("create cache dir {}: {e}", dir.display()));
    }
    let so_path = dir.join(format!("pf_{hash:016x}.so"));
    let src = emit_rust(tape);
    let want_meta = source_fingerprint(tape);

    // Disk hit: accept only an artifact whose pf_meta matches the source
    // this emitter generates (stale/corrupt artifacts are replaced).
    if so_path.exists() {
        match load_artifact(&so_path) {
            Ok((func, meta)) if meta == want_meta => {
                bump("exec.native.compile_hit");
                map.insert(
                    hash,
                    CacheEntry::Ready {
                        func,
                        #[cfg(debug_assertions)]
                        fingerprint: want_meta,
                    },
                );
                return Ok(func);
            }
            Ok(_) | Err(_) => {
                bump("exec.native.stale");
                let _ = std::fs::remove_file(&so_path);
            }
        }
    }

    // Compile. Source is written next to the artifact for inspection.
    let src_path = dir.join(format!("pf_{hash:016x}.rs"));
    if let Err(e) = std::fs::write(&src_path, &src) {
        return fail(
            &mut map,
            format!("write source {}: {e}", src_path.display()),
        );
    }
    let _span = pf_trace::span_lazy(|| format!("exec.native.compile.{}", tape.name));
    if let Err(e) = compile(&src_path, &so_path, &rustc) {
        return fail(&mut map, e);
    }
    match load_artifact(&so_path) {
        Ok((func, meta)) if meta == want_meta => {
            bump("exec.native.compile_miss");
            map.insert(
                hash,
                CacheEntry::Ready {
                    func,
                    #[cfg(debug_assertions)]
                    fingerprint: want_meta,
                },
            );
            Ok(func)
        }
        Ok((_, meta)) => fail(
            &mut map,
            format!("fresh artifact meta 0x{meta:016x} != expected 0x{want_meta:016x}"),
        ),
        Err(e) => fail(&mut map, format!("load fresh artifact: {e}")),
    }
}

/// Build the argument pack and invoke the compiled kernel over `region`.
/// A nonzero return code is an ABI mismatch detected before any store.
#[allow(clippy::too_many_arguments)]
pub(crate) fn launch(
    func: PfKernelFn,
    tape: &Tape,
    reads: &[&FieldArray],
    writes: &mut [FieldArray],
    read_map: &[usize],
    write_map: &[usize],
    params: &[f64],
    ctx: &RunCtx,
    region: IterRegion,
) -> Result<(), i32> {
    // Write pointers first (mutable borrows), then assemble per-slot args.
    let write_ptrs: Vec<*mut f64> = writes
        .iter_mut()
        .map(|a| a.data_mut().as_mut_ptr())
        .collect();
    let args: Vec<NativeField> = (0..tape.fields.len())
        .map(|slot| {
            let (arr, ptr): (&FieldArray, *mut f64) = if write_map[slot] != usize::MAX {
                (&writes[write_map[slot]], write_ptrs[write_map[slot]])
            } else {
                let a = reads[read_map[slot]];
                // Read-only slots are never stored through (the executor
                // asserts no field is both read and written).
                (a, a.data().as_ptr() as *mut f64)
            };
            let [sc, sx, sy, sz] = arr.strides();
            NativeField {
                ptr,
                base: arr.index(0, 0, 0, 0) as i64,
                stride: [sc as i64, sx as i64, sy as i64, sz as i64],
            }
        })
        .collect();
    let lo = [
        region.lo[0] as u64,
        region.lo[1] as u64,
        region.lo[2] as u64,
    ];
    let hi = [
        region.hi[0] as u64,
        region.hi[1] as u64,
        region.hi[2] as u64,
    ];
    let rc = unsafe {
        func(
            args.as_ptr(),
            args.len() as u64,
            params.as_ptr(),
            params.len() as u64,
            lo.as_ptr(),
            hi.as_ptr(),
            ctx.origin.as_ptr(),
            ctx.dx.as_ptr(),
            ctx.time,
            ctx.timestep,
            ctx.seed,
            rayon::current_num_threads() as u64,
        )
    };
    if rc == 0 {
        Ok(())
    } else {
        Err(rc)
    }
}

/// Drop every in-process cache entry — resolved function pointers and
/// negative (compile-failed) entries alike. Disk artifacts are untouched;
/// the next launch re-validates them against the emitter fingerprint.
/// Already-mapped kernel code is never unloaded, so function pointers
/// handed out earlier stay valid. Use after repointing
/// `PF_NATIVE_CACHE_DIR`/`PF_NATIVE_RUSTC`, or in tests that poison disk
/// artifacts deliberately.
pub fn clear_memory_cache() {
    cache().lock().unwrap_or_else(|p| p.into_inner()).clear();
}

/// Can this sandbox produce and load cdylibs at all? Probed once per
/// process with a trivial source — CI uses this to skip the native smoke
/// stage loudly instead of failing it.
pub fn native_available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        let dir = native_cache_dir();
        if std::fs::create_dir_all(&dir).is_err() {
            return false;
        }
        let src_path = dir.join(format!("pf_selftest_{}.rs", std::process::id()));
        let so_path = dir.join(format!("pf_selftest_{}.so", std::process::id()));
        let src = "#[no_mangle]\npub extern \"C\" fn pf_selftest() -> u64 { 42 }\n";
        if std::fs::write(&src_path, src).is_err() {
            return false;
        }
        let ok = compile(&src_path, &so_path, &rustc_path()).is_ok() && {
            use std::os::unix::ffi::OsStrExt;
            let c = std::ffi::CString::new(so_path.as_os_str().as_bytes()).unwrap();
            unsafe { !dlopen(c.as_ptr(), RTLD_NOW).is_null() }
        };
        let _ = std::fs::remove_file(&src_path);
        let _ = std::fs::remove_file(&so_path);
        ok
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_kernel, ExecMode};
    use crate::store::FieldStore;
    use pf_fields::Layout;
    use pf_ir::{generate, GenOptions};
    use pf_stencil::{Assignment, Discretization, StencilKernel};
    use pf_symbolic::{Access, Expr, Field};

    /// Native tests mutate PF_NATIVE_* env vars and the global caches;
    /// serialize them.
    pub(crate) fn native_test_lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    /// A unique scratch cache dir, removed on drop (flake guard: parallel
    /// `cargo test` processes never share artifact paths).
    pub(crate) struct ScratchCache(pub PathBuf);

    impl ScratchCache {
        pub(crate) fn new(tag: &str) -> Self {
            static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "pf-native-test-{tag}-{}-{}",
                std::process::id(),
                NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).expect("create scratch cache dir");
            std::env::set_var("PF_NATIVE_CACHE_DIR", &dir);
            ScratchCache(dir)
        }
    }

    impl Drop for ScratchCache {
        fn drop(&mut self) {
            std::env::remove_var("PF_NATIVE_CACHE_DIR");
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn diffusion_tape(name: &str, src: Field, dst: Field) -> Tape {
        let disc = Discretization::isotropic(2, 1.0);
        let u = Expr::access(Access::center(src, 0));
        let rhs: Expr = (0..2)
            .map(|d| Expr::d(Expr::num(1.0) * Expr::d(u.clone(), d), d))
            .sum();
        let update = disc.explicit_euler(Access::center(src, 0), &rhs, 0.1) + Expr::rand(0) * 1e-3;
        let k = StencilKernel::new(
            name,
            vec![Assignment::store(Access::center(dst, 0), update)],
        );
        generate(&k, &GenOptions::default())
    }

    #[test]
    fn emitted_source_is_deterministic_and_self_described() {
        let src = Field::new("nat_em_src", 1, 2);
        let dst = Field::new("nat_em_dst", 1, 2);
        let tape = diffusion_tape("nat_emit", src, dst);
        let a = emit_rust(&tape);
        let b = emit_rust(&tape);
        assert_eq!(a, b, "emission must be deterministic");
        assert!(a.contains("pub unsafe extern \"C\" fn pf_kernel"));
        assert!(a.contains("pub extern \"C\" fn pf_meta"));
        assert!(a.contains("pf_rand_pm1"), "Philox must be inlined:\n{a}");
        let meta = source_fingerprint(&tape);
        assert!(
            a.contains(&format!("0x{meta:016x}u64")),
            "meta export must carry the source fingerprint"
        );
    }

    #[test]
    fn native_matches_serial_bitwise_on_a_noisy_diffusion_kernel() {
        let _g = native_test_lock().lock().unwrap_or_else(|p| p.into_inner());
        let _scratch = ScratchCache::new("bitwise");
        let src = Field::new("nat_bw_src", 1, 2);
        let dst = Field::new("nat_bw_dst", 1, 2);
        let tape = diffusion_tape("nat_bitwise", src, dst);
        let run = |mode: ExecMode| {
            let mut store = FieldStore::new();
            store
                .allocate(src, [13, 9, 1], 1, Layout::Fzyx)
                .fill_with(0, |x, y, _| ((x * 31 + y * 17) % 7) as f64);
            store.get_mut(src).apply_periodic(0);
            store.get_mut(src).apply_periodic(1);
            store.allocate(dst, [13, 9, 1], 1, Layout::Fzyx);
            let ctx = RunCtx {
                seed: 7,
                timestep: 3,
                origin: [2, -1, 0],
                ..RunCtx::default()
            };
            run_kernel(&tape, &mut store, &[], [13, 9, 1], &ctx, mode);
            store.take(dst)
        };
        let serial = run(ExecMode::Serial);
        let native = run(ExecMode::Native);
        assert_eq!(
            serial.max_abs_diff(&native),
            0.0,
            "native codegen must be bitwise identical to the serial interpreter"
        );
    }

    #[test]
    fn compile_cache_hits_memory_then_disk() {
        let _g = native_test_lock().lock().unwrap_or_else(|p| p.into_inner());
        let _scratch = ScratchCache::new("cache");
        let src = Field::new("nat_cc_src", 1, 2);
        let dst = Field::new("nat_cc_dst", 1, 2);
        let tape = diffusion_tape("nat_cache", src, dst);
        let misses = || pf_trace::counter("exec.native.compile_miss").value();
        let mem_hits = || pf_trace::counter("exec.native.mem_hit").value();
        let disk_hits = || pf_trace::counter("exec.native.compile_hit").value();
        let (m0, h0, d0) = (misses(), mem_hits(), disk_hits());
        get_or_load(&tape).expect("first load compiles");
        get_or_load(&tape).expect("second load hits memory");
        if pf_trace::enabled() {
            assert_eq!(misses() - m0, 1, "one rustc invocation");
            assert_eq!(mem_hits() - h0, 1, "second load from memory");
        }
        // Drop the in-memory entry: the next load must come from disk.
        cache()
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&tape.structural_hash());
        get_or_load(&tape).expect("third load hits the disk artifact");
        if pf_trace::enabled() {
            assert_eq!(disk_hits() - d0, 1, "disk artifact accepted");
            assert_eq!(misses() - m0, 1, "no recompile");
        }
    }

    #[test]
    fn corrupt_and_stale_artifacts_are_replaced() {
        let _g = native_test_lock().lock().unwrap_or_else(|p| p.into_inner());
        let scratch = ScratchCache::new("poison");
        let src = Field::new("nat_po_src", 1, 2);
        let dst = Field::new("nat_po_dst", 1, 2);
        let tape = diffusion_tape("nat_poison", src, dst);
        let so_path = scratch
            .0
            .join(format!("pf_{:016x}.so", tape.structural_hash()));

        // Corrupt: garbage bytes where the artifact should be.
        std::fs::write(&so_path, b"not an ELF file").unwrap();
        let stale = || pf_trace::counter("exec.native.stale").value();
        let s0 = stale();
        get_or_load(&tape).expect("corrupt artifact must be recompiled");
        if pf_trace::enabled() {
            assert_eq!(stale() - s0, 1, "corrupt artifact rejected");
        }

        // Stale: a *valid* cdylib with the wrong fingerprint (another
        // kernel's artifact copied over this path).
        let other = diffusion_tape("nat_poison_other", src, dst);
        get_or_load(&other).expect("other kernel compiles");
        cache().lock().unwrap_or_else(|p| p.into_inner()).clear();
        let other_so = scratch
            .0
            .join(format!("pf_{:016x}.so", other.structural_hash()));
        // Install the wrong artifact the way a real (older-emitter) process
        // would: copy + atomic rename. Overwriting the mapped file in place
        // would corrupt the live mapping instead of testing staleness.
        let tmp = scratch.0.join("stale_copy.tmp");
        std::fs::copy(&other_so, &tmp).unwrap();
        std::fs::rename(&tmp, &so_path).unwrap();
        let s1 = stale();
        get_or_load(&tape).expect("stale artifact must be recompiled");
        if pf_trace::enabled() {
            assert_eq!(stale() - s1, 1, "stale artifact rejected via pf_meta");
        }
        // And the replacement actually runs this tape's code.
        cache().lock().unwrap_or_else(|p| p.into_inner()).clear();
        get_or_load(&tape).expect("replaced artifact loads");
    }

    #[test]
    fn forced_rustc_failure_is_a_typed_error_and_negatively_cached() {
        let _g = native_test_lock().lock().unwrap_or_else(|p| p.into_inner());
        let _scratch = ScratchCache::new("fail");
        std::env::set_var("PF_NATIVE_RUSTC", "/nonexistent/pf-rustc-forced-failure");
        let src = Field::new("nat_ff_src", 1, 2);
        let dst = Field::new("nat_ff_dst", 1, 2);
        let tape = diffusion_tape("nat_force_fail", src, dst);
        let fails = || pf_trace::counter("exec.native.compile_fail").value();
        let f0 = fails();
        let err = get_or_load(&tape).expect_err("rustc cannot exist");
        match &err {
            ExecError::NativeCompile { kernel, detail } => {
                assert_eq!(kernel, "nat_force_fail");
                assert!(detail.contains("pf-rustc-forced-failure"), "{detail}");
            }
            other => panic!("expected NativeCompile, got {other:?}"),
        }
        let _ = get_or_load(&tape).expect_err("negative cache holds");
        if pf_trace::enabled() {
            assert!(fails() - f0 >= 2, "every failed launch counts");
        }
        // Repairing the compiler path retries the compile.
        std::env::remove_var("PF_NATIVE_RUSTC");
        get_or_load(&tape).expect("compile succeeds after repair");
    }

    #[test]
    fn availability_probe_is_positive_in_this_container() {
        let _g = native_test_lock().lock().unwrap_or_else(|p| p.into_inner());
        assert!(native_available(), "rustc must produce cdylibs here");
    }
}
