//! The native kernel executor.
//!
//! Runs a compiled tape over a block: the moral equivalent of the paper's
//! generated C/OpenMP code. Loads and stores are resolved to (array, linear
//! offset) pairs — once per (kernel, storage geometry), the resulting
//! [`Plan`] is cached — and the spatial loops then execute the tape's level
//! sections at the right loop depths (LICM hoisting). Three loop drivers:
//! serial, rayon-parallel over the outermost loop (the OpenMP analogue),
//! and the strip-mined vectorized engine in [`crate::vector`] (the paper's
//! explicitly vectorized kernels, §3.5).
//!
//! The only `unsafe` in the whole workspace lives in this crate: the
//! parallel paths write disjoint outer-loop slabs of the destination arrays
//! through a shared pointer ([`RawSlice`]). The disjointness invariant —
//! every store hits the centre cell along the outer loop dimension, so two
//! outer indices can never write the same address — is checked before any
//! memory is touched; violations surface as a typed [`ExecError`] (and
//! [`run_kernel`] falls back to serial execution instead of racing).

use crate::store::FieldStore;
use pf_fields::FieldArray;
use pf_grid::IterRegion;
use pf_ir::{Tape, TapeOp};
use pf_rng::CellRng;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Per-launch execution context.
#[derive(Clone, Copy, Debug)]
pub struct RunCtx {
    /// Simulation time at this step.
    pub time: f64,
    /// Time step index (Philox counter component).
    pub timestep: u64,
    /// Grid spacing.
    pub dx: [f64; 3],
    /// Global index of this block's (0,0,0) cell (multi-block runs).
    pub origin: [i64; 3],
    /// RNG seed.
    pub seed: u32,
}

impl Default for RunCtx {
    fn default() -> Self {
        RunCtx {
            time: 0.0,
            timestep: 0,
            dx: [1.0; 3],
            origin: [0; 3],
            seed: 0,
        }
    }
}

/// How to run the spatial loops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    Serial,
    /// Parallelize the outermost spatial loop across the rayon pool,
    /// one cell at a time (scalar interpretation).
    Parallel,
    /// Strip-mined batch execution: interpret the tape over x-strips of
    /// [`crate::STRIP_WIDTH`] cells with SoA lane registers, parallelized
    /// over cache-blocked outer-loop slabs. Bitwise identical to `Serial`.
    Vectorized,
    /// Generated machine code: the tape is emitted as Rust source, compiled
    /// to a cdylib with the in-container `rustc` and dispatched through a
    /// typed C ABI (see [`crate::native`]). Artifacts are cached on disk
    /// keyed by [`Tape::structural_hash`]. Bitwise identical to `Serial`;
    /// compile failures fall back to `Vectorized` via [`run_kernel`].
    Native,
}

/// Typed launch failure. Detected before any memory is written, so the
/// bound storage is untouched when an error is returned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// Parallel and vectorized execution partition the outer spatial loop
    /// across threads; a store at a nonzero offset along that dimension
    /// would let two partitions write the same cell. Run such kernels
    /// serially (or reschedule the store to the centre cell).
    NonCentreStore {
        kernel: String,
        /// The outer loop dimension (`loop_order[0]`).
        dim: usize,
        /// The offending store offset along that dimension.
        offset: i16,
    },
    /// Native execution could not obtain a compiled kernel — `rustc`
    /// failed, the cache directory is unusable, or a freshly built artifact
    /// would not load. Raised before any array is taken from the store.
    NativeCompile { kernel: String, detail: String },
    /// The compiled kernel rejected the launch argument pack (its built-in
    /// field/parameter arity checks run before any store is executed, so
    /// the bound storage holds its pre-launch contents).
    NativeAbi { kernel: String, code: i32 },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::NonCentreStore {
                kernel,
                dim,
                offset,
            } => write!(
                f,
                "kernel '{kernel}' stores at offset {offset} along the outer loop \
                 dimension {dim} — parallel partitions would overlap; run it serially"
            ),
            ExecError::NativeCompile { kernel, detail } => write!(
                f,
                "kernel '{kernel}' could not be compiled to native code: {detail}"
            ),
            ExecError::NativeAbi { kernel, code } => write!(
                f,
                "kernel '{kernel}': compiled artifact rejected the launch \
                 arguments (ABI check {code})"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// A tape instruction with its memory accesses resolved.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Step {
    Op(TapeOp),
    /// Load from read-array `arr` at `cell_base + delta`.
    Load {
        arr: u16,
        delta: isize,
    },
    /// Store to write-array `arr` at `cell_base + delta`.
    Store {
        arr: u16,
        delta: isize,
        val: u32,
    },
}

pub(crate) struct Plan {
    pub(crate) steps: Vec<Step>,
    /// level boundaries: steps[..sec[0]] = level 0, ..sec[1] = ≤1, etc.
    pub(crate) sec: [usize; 4],
    /// strides (x,y,z) of each read array
    pub(crate) read_strides: Vec<[isize; 3]>,
    pub(crate) read_base: Vec<isize>,
    pub(crate) write_strides: Vec<[isize; 3]>,
    pub(crate) write_base: Vec<isize>,
    /// The tape's levels were non-monotone (a GPU-oriented reschedule), so
    /// every hoisted section collapsed to per-cell execution.
    pub(crate) licm_disabled: bool,
}

fn resolve(
    tape: &Tape,
    reads: &[&FieldArray],
    writes: &[FieldArray],
    read_map: &[usize],
    write_map: &[usize],
) -> Plan {
    let mut steps = Vec::with_capacity(tape.instrs.len());
    for op in &tape.instrs {
        match *op {
            TapeOp::Load { field, comp, off } => {
                let arr_idx = read_map[field as usize];
                let arr = reads[arr_idx];
                let [sc, sx, sy, sz] = arr.strides();
                let delta = comp as isize * sc
                    + off[0] as isize * sx
                    + off[1] as isize * sy
                    + off[2] as isize * sz;
                steps.push(Step::Load {
                    arr: arr_idx as u16,
                    delta,
                });
            }
            TapeOp::Store {
                field,
                comp,
                off,
                val,
            } => {
                let arr_idx = write_map[field as usize];
                let arr = &writes[arr_idx];
                let [sc, sx, sy, sz] = arr.strides();
                let delta = comp as isize * sc
                    + off[0] as isize * sx
                    + off[1] as isize * sy
                    + off[2] as isize * sz;
                steps.push(Step::Store {
                    arr: arr_idx as u16,
                    delta,
                    val: val.0,
                });
            }
            other => steps.push(Step::Op(other)),
        }
    }
    // Level sections are only usable when levels are monotone (the LICM
    // pass sorts them; GPU-oriented reschedules may not preserve this — then
    // everything runs per cell, which is always correct).
    let monotone = tape.levels.windows(2).all(|w| w[0] <= w[1]);
    let mut sec = [tape.instrs.len(); 4];
    if monotone {
        for (lvl, s) in sec.iter_mut().enumerate() {
            *s = tape
                .levels
                .iter()
                .position(|&l| l as usize > lvl)
                .unwrap_or(tape.instrs.len());
        }
    } else {
        sec[0] = 0;
        sec[1] = 0;
        sec[2] = 0;
    }
    let base_of = |arr: &FieldArray| -> isize { arr.index(0, 0, 0, 0) as isize };
    Plan {
        steps,
        sec,
        read_strides: reads
            .iter()
            .map(|a| {
                let [_, sx, sy, sz] = a.strides();
                [sx, sy, sz]
            })
            .collect(),
        read_base: reads.iter().map(|a| base_of(a)).collect(),
        write_strides: writes
            .iter()
            .map(|a| {
                let [_, sx, sy, sz] = a.strides();
                [sx, sy, sz]
            })
            .collect(),
        write_base: writes.iter().map(base_of).collect(),
        licm_disabled: !monotone,
    }
}

/// Cache key: the tape's structural fingerprint plus the bound storage
/// geometry (base offset and strides per field slot). Two launches with
/// equal keys resolve to byte-identical plans, so `resolve()` runs once per
/// (kernel, block shape) instead of on every launch.
#[derive(PartialEq, Eq, Hash)]
struct PlanKey {
    tape: u64,
    geom: Vec<(isize, [isize; 4])>,
}

/// One cached plan, stamped with an insertion sequence number so the growth
/// guard can evict the oldest half instead of dropping everything.
struct PlanEntry {
    seq: u64,
    plan: Arc<Plan>,
    /// Debug builds record the FNV fingerprint of the native source the
    /// tape renders and re-check it on every hit: two distinct tapes
    /// colliding on `structural_hash` would silently reuse each other's
    /// plans (and compiled artifacts), so surface that loudly.
    #[cfg(debug_assertions)]
    src_fp: u64,
}

/// Plans keyed by structural fingerprint + storage geometry.
struct PlanCache {
    map: HashMap<PlanKey, PlanEntry>,
    seq: u64,
}

/// Growth-guard threshold: reaching this many cached plans evicts the
/// oldest-inserted half.
const PLAN_CACHE_CAP: usize = 512;

fn plan_cache() -> &'static Mutex<PlanCache> {
    static CACHE: OnceLock<Mutex<PlanCache>> = OnceLock::new();
    CACHE.get_or_init(|| {
        Mutex::new(PlanCache {
            map: HashMap::new(),
            seq: 0,
        })
    })
}

fn resolve_cached(
    tape: &Tape,
    reads: &[&FieldArray],
    writes: &[FieldArray],
    read_map: &[usize],
    write_map: &[usize],
) -> Arc<Plan> {
    let geom = (0..tape.fields.len())
        .map(|slot| {
            let arr: &FieldArray = if write_map[slot] != usize::MAX {
                &writes[write_map[slot]]
            } else {
                reads[read_map[slot]]
            };
            (arr.index(0, 0, 0, 0) as isize, arr.strides())
        })
        .collect();
    let key = PlanKey {
        tape: tape.structural_hash(),
        geom,
    };
    let mut cache = plan_cache().lock().expect("plan cache poisoned");
    if let Some(entry) = cache.map.get(&key) {
        if pf_trace::enabled() {
            pf_trace::counter(&format!("exec.plan_cache.hit.{}", tape.name)).incr(1);
        }
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            entry.src_fp,
            crate::native::source_fingerprint(tape),
            "plan-cache key collision: tape '{}' matches a cached plan's \
             structural_hash but renders different native source",
            tape.name
        );
        return Arc::clone(&entry.plan);
    }
    if pf_trace::enabled() {
        pf_trace::counter(&format!("exec.plan_cache.miss.{}", tape.name)).incr(1);
    }
    let plan = Arc::new(resolve(tape, reads, writes, read_map, write_map));
    // Growth guard: a long-lived process cycling through many distinct
    // (kernel, shape) pairs should not leak plans without bound. Evict the
    // oldest-inserted half — dropping the whole cache would force every
    // live kernel through a thundering-herd re-resolution.
    if cache.map.len() >= PLAN_CACHE_CAP {
        let mut seqs: Vec<u64> = cache.map.values().map(|e| e.seq).collect();
        seqs.sort_unstable();
        let cutoff = seqs[seqs.len() / 2];
        let before = cache.map.len();
        cache.map.retain(|_, e| e.seq >= cutoff);
        let evicted = (before - cache.map.len()) as u64;
        if pf_trace::enabled() {
            pf_trace::counter("exec.plan_cache.evict").incr(evicted);
        }
    }
    cache.seq += 1;
    let entry = PlanEntry {
        seq: cache.seq,
        plan: Arc::clone(&plan),
        #[cfg(debug_assertions)]
        src_fp: crate::native::source_fingerprint(tape),
    };
    cache.map.insert(key, entry);
    plan
}

/// Shared mutable view over a write array for the parallel paths. Safety
/// rests on the caller guaranteeing disjoint index sets per thread.
#[derive(Clone, Copy)]
pub(crate) struct RawSlice {
    ptr: *mut f64,
    len: usize,
}
unsafe impl Send for RawSlice {}
unsafe impl Sync for RawSlice {}

impl RawSlice {
    #[inline]
    pub(crate) unsafe fn write(&self, idx: usize, v: f64) {
        debug_assert!(idx < self.len);
        unsafe { *self.ptr.add(idx) = v }
    }

    /// Contiguous unit-stride store of a whole strip.
    #[inline]
    pub(crate) unsafe fn write_strip(&self, idx: usize, src: &[f64]) {
        debug_assert!(idx + src.len() <= self.len);
        unsafe { std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr.add(idx), src.len()) }
    }
}

#[inline]
pub(crate) fn f32_div(a: f64, b: f64) -> f64 {
    (a as f32 / b as f32) as f64
}

#[inline]
pub(crate) fn f32_sqrt(a: f64) -> f64 {
    (a as f32).sqrt() as f64
}

#[inline]
pub(crate) fn f32_rsqrt(a: f64) -> f64 {
    (1.0 / (a as f32).sqrt()) as f64
}

/// The extended iteration range of `tape` over a block interior: face
/// kernels sweep `domain + iter_extent` cells.
pub fn extended_range(tape: &Tape, domain: [usize; 3]) -> [usize; 3] {
    [
        domain[0] + tape.iter_extent[0],
        domain[1] + tape.iter_extent[1],
        domain[2] + tape.iter_extent[2],
    ]
}

/// Execute `tape` over the block interior (plus its `iter_extent`).
///
/// `domain` is the block's interior cell shape; the written arrays must be
/// sized to accept the extended iteration range of face kernels.
///
/// Infallible wrapper over [`run_kernel_checked`]: a kernel whose stores
/// violate the parallel partitioning constraint is re-run serially (with an
/// `exec.serial_fallback.<kernel>` trace counter) instead of panicking
/// mid-launch or racing.
pub fn run_kernel(
    tape: &Tape,
    store: &mut FieldStore,
    params: &[f64],
    domain: [usize; 3],
    ctx: &RunCtx,
    mode: ExecMode,
) {
    let region = IterRegion::full(extended_range(tape, domain));
    run_kernel_region(tape, store, params, domain, region, ctx, mode);
}

/// Execute `tape`, returning a typed error instead of falling back when the
/// requested mode cannot run it. On `Err` the bound storage is untouched.
pub fn run_kernel_checked(
    tape: &Tape,
    store: &mut FieldStore,
    params: &[f64],
    domain: [usize; 3],
    ctx: &RunCtx,
    mode: ExecMode,
) -> Result<(), ExecError> {
    let region = IterRegion::full(extended_range(tape, domain));
    run_kernel_region_checked(tape, store, params, domain, region, ctx, mode)
}

/// Execute `tape` over a sub-box of its extended iteration range — the
/// overlapped distributed schedule launches the interior region while halo
/// messages are in flight and the frontier shells after the receives
/// complete. Cells outside `region` are untouched; cell semantics
/// (absolute coordinates, Philox counters) are identical to a full launch,
/// so splitting a sweep into tiling regions is bitwise equivalent to one
/// [`run_kernel`] call. Falls back to serial like [`run_kernel`].
pub fn run_kernel_region(
    tape: &Tape,
    store: &mut FieldStore,
    params: &[f64],
    domain: [usize; 3],
    region: IterRegion,
    ctx: &RunCtx,
    mode: ExecMode,
) {
    match run_kernel_region_checked(tape, store, params, domain, region, ctx, mode) {
        Ok(()) => {}
        Err(ExecError::NonCentreStore { .. }) => {
            if pf_trace::enabled() {
                pf_trace::counter(&format!("exec.serial_fallback.{}", tape.name)).incr(1);
                pf_trace::counter(&format!("exec.fallback.{}", tape.name)).incr(1);
            }
            run_kernel_region_checked(tape, store, params, domain, region, ctx, ExecMode::Serial)
                .expect("serial execution has no store-offset constraints");
        }
        Err(e @ (ExecError::NativeCompile { .. } | ExecError::NativeAbi { .. })) => {
            // Native launch failure is never fatal: fall back to the
            // vectorized interpreter, which is bitwise identical. Warn once
            // per process — a broken rustc would otherwise spam every step.
            if pf_trace::enabled() {
                pf_trace::counter(&format!("exec.fallback.{}", tape.name)).incr(1);
            }
            static WARNED: std::sync::atomic::AtomicBool =
                std::sync::atomic::AtomicBool::new(false);
            if !WARNED.swap(true, std::sync::atomic::Ordering::Relaxed) {
                eprintln!(
                    "pf-backend: native execution unavailable, falling back to vectorized: {e}"
                );
            }
            // Recurse through the infallible path: a tape the vectorized
            // engine also rejects (NonCentreStore) then lands on Serial.
            run_kernel_region(
                tape,
                store,
                params,
                domain,
                region,
                ctx,
                ExecMode::Vectorized,
            );
        }
    }
}

/// Checked sub-region launch; see [`run_kernel_region`].
pub fn run_kernel_region_checked(
    tape: &Tape,
    store: &mut FieldStore,
    params: &[f64],
    domain: [usize; 3],
    region: IterRegion,
    ctx: &RunCtx,
    mode: ExecMode,
) -> Result<(), ExecError> {
    assert_eq!(
        params.len(),
        tape.params.len(),
        "kernel {} expects {} parameters",
        tape.name,
        tape.params.len()
    );

    // Loops iterate (a sub-box of) the extended range (interior +
    // face-kernel extent).
    let ext = extended_range(tape, domain);
    for d in 0..3 {
        assert!(
            region.hi[d] <= ext[d],
            "kernel {}: region {:?} exceeds the extended range {:?}",
            tape.name,
            region,
            ext
        );
    }
    let order = tape.loop_order;

    // The strip engine mines strips along the unit-stride x dimension,
    // which the LICM pass always keeps innermost (`compute_levels` asserts
    // it). Defensively run hand-built tapes that violate this serially.
    let mode = if mode == ExecMode::Vectorized && order[2] != 0 {
        ExecMode::Serial
    } else {
        mode
    };

    // Partitioned execution (Parallel and Vectorized) splits the outer
    // spatial loop across threads; stores off-centre along that dimension
    // would let two partitions write the same cell. Checked before any
    // array is taken out of the store, so an `Err` leaves it untouched.
    if mode != ExecMode::Serial {
        for op in &tape.instrs {
            if let TapeOp::Store { off, .. } = op {
                if off[order[0]] != 0 {
                    return Err(ExecError::NonCentreStore {
                        kernel: tape.name.clone(),
                        dim: order[0],
                        offset: off[order[0]],
                    });
                }
            }
        }
    }

    // Native mode resolves its compiled kernel before any array is taken
    // out of the store, so a compile failure leaves the storage untouched
    // (same contract as the NonCentreStore check above).
    let native_fn = if mode == ExecMode::Native {
        Some(crate::native::get_or_load(tape)?)
    } else {
        None
    };

    // Observability: one span + a few counter bumps per launch (a launch
    // sweeps a whole block, so this is far off the per-cell hot path).
    // `exec.cells` meters the actual iteration count: the region volume,
    // which for a full launch is the extended range (domain + iter_extent).
    if pf_trace::enabled() {
        pf_trace::counter(&format!("exec.launches.{}", tape.name)).incr(1);
        let n = region.cells() as u64;
        pf_trace::counter("exec.cells").incr(n);
        pf_trace::counter(&format!("exec.cells.{}", tape.name)).incr(n);
    }
    let _launch_span = pf_trace::span_lazy(|| format!("exec.kernel.{}", tape.name));

    // Partition fields into read-only and written.
    let mut written: Vec<u16> = Vec::new();
    for op in &tape.instrs {
        if let TapeOp::Store { field, .. } = op {
            if !written.contains(field) {
                written.push(*field);
            }
        }
    }
    for op in &tape.instrs {
        if let TapeOp::Load { field, .. } = op {
            assert!(
                !written.contains(field),
                "kernel {} reads and writes field {} — Jacobi-style kernels only",
                tape.name,
                tape.fields[*field as usize].name()
            );
        }
    }

    // Split borrows: take written arrays out of the store.
    let mut write_map = vec![usize::MAX; tape.fields.len()];
    let mut writes: Vec<FieldArray> = Vec::new();
    for (slot, f) in tape.fields.iter().enumerate() {
        if written.contains(&(slot as u16)) {
            write_map[slot] = writes.len();
            writes.push(store.take(*f));
        }
    }
    // A native launch can still fail after the arrays are taken out of the
    // store (the artifact's own ABI checks); the error is deferred so the
    // arrays are always re-inserted first.
    let mut deferred: Option<ExecError> = None;
    {
        let mut read_map = vec![usize::MAX; tape.fields.len()];
        let mut reads: Vec<&FieldArray> = Vec::new();
        for (slot, f) in tape.fields.iter().enumerate() {
            if write_map[slot] == usize::MAX {
                read_map[slot] = reads.len();
                reads.push(store.get(*f));
            }
        }
        // Launch gate: prove every access fits the bound arrays' actual
        // ghost layers and padding before touching any memory. This is the
        // runtime completion of pf-analyze's halo pass — generation-time
        // verification cannot know what storage a caller will bind.
        if pf_ir::verify_enabled() {
            let allocs: Vec<pf_analyze::FieldAlloc> = (0..tape.fields.len())
                .map(|slot| {
                    let arr: &FieldArray = if write_map[slot] != usize::MAX {
                        &writes[write_map[slot]]
                    } else {
                        reads[read_map[slot]]
                    };
                    let shape = arr.shape();
                    pf_analyze::FieldAlloc {
                        ghost: arr.ghost_layers(),
                        pad: [
                            shape[0].saturating_sub(domain[0]),
                            shape[1].saturating_sub(domain[1]),
                            shape[2].saturating_sub(domain[2]),
                        ],
                    }
                })
                .collect();
            let halo = pf_analyze::check_halo(tape, &allocs);
            assert!(
                halo.is_empty(),
                "kernel {} does not fit its bound storage:\n{}",
                tape.name,
                pf_analyze::render(&halo)
            );
        }

        let plan = resolve_cached(tape, &reads, &writes, &read_map, &write_map);
        // Surface LICM loss per launch: GPU-rescheduled tapes run every
        // hoisted section per cell on the CPU, silently costing throughput.
        if plan.licm_disabled && pf_trace::enabled() {
            pf_trace::counter(&format!("exec.licm_disabled.{}", tape.name)).incr(1);
        }
        let read_data: Vec<&[f64]> = reads.iter().map(|a| a.data()).collect();

        match mode {
            ExecMode::Native => {
                let func = native_fn.expect("resolved above for Native mode");
                if let Err(code) = crate::native::launch(
                    func,
                    tape,
                    &reads,
                    &mut writes,
                    &read_map,
                    &write_map,
                    params,
                    ctx,
                    region,
                ) {
                    // The artifact's arity checks run before any store, so
                    // the arrays are unmodified — but they must go back into
                    // the store before the error surfaces.
                    deferred = Some(ExecError::NativeAbi {
                        kernel: tape.name.clone(),
                        code,
                    });
                }
            }
            ExecMode::Serial => {
                let mut write_data: Vec<&mut [f64]> =
                    writes.iter_mut().map(|a| a.data_mut()).collect();
                let mut regs = vec![0.0f64; tape.instrs.len()];
                let mut cell = CellCursor::new(tape, &plan, params, ctx, region);
                cell.exec_section(&mut regs, &read_data, 0, plan.sec[0], [0; 3]);
                for o in region.lo[order[0]]..region.hi[order[0]] {
                    cell.run_outer(
                        &mut regs,
                        &read_data,
                        &mut |idx, v, arr| write_data[arr][idx] = v,
                        o,
                    );
                }
            }
            ExecMode::Parallel => {
                let raw: Vec<RawSlice> = writes
                    .iter_mut()
                    .map(|a| {
                        let d = a.data_mut();
                        RawSlice {
                            ptr: d.as_mut_ptr(),
                            len: d.len(),
                        }
                    })
                    .collect();
                let raw = &raw;
                let plan_ref = &*plan;
                let read_data = &read_data;
                (region.lo[order[0]]..region.hi[order[0]])
                    .into_par_iter()
                    .for_each_init(
                        || vec![0.0f64; tape.instrs.len()],
                        |regs, o| {
                            let mut cell = CellCursor::new(tape, plan_ref, params, ctx, region);
                            cell.exec_section(regs, read_data, 0, plan_ref.sec[0], [0; 3]);
                            cell.run_outer(
                                regs,
                                read_data,
                                // SAFETY: distinct `o` values write disjoint
                                // cells (centre stores along the outer loop,
                                // checked above), and each array index is in
                                // bounds by construction of the plan deltas.
                                &mut |idx, v, arr| unsafe { raw[arr].write(idx, v) },
                                o,
                            );
                        },
                    );
            }
            ExecMode::Vectorized => {
                let raw: Vec<RawSlice> = writes
                    .iter_mut()
                    .map(|a| {
                        let d = a.data_mut();
                        RawSlice {
                            ptr: d.as_mut_ptr(),
                            len: d.len(),
                        }
                    })
                    .collect();
                crate::vector::run_vectorized(tape, &plan, params, ctx, region, &read_data, &raw);
            }
        }
    }

    // Re-insert written arrays.
    let mut w = writes.into_iter();
    for (slot, f) in tape.fields.iter().enumerate() {
        if write_map[slot] != usize::MAX {
            store.insert(*f, w.next().expect("one array per written field"));
        }
    }
    match deferred {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Loop driver holding the per-launch constants.
struct CellCursor<'a> {
    tape: &'a Tape,
    plan: &'a Plan,
    params: &'a [f64],
    ctx: &'a RunCtx,
    region: IterRegion,
    rng: CellRng,
}

impl<'a> CellCursor<'a> {
    fn new(
        tape: &'a Tape,
        plan: &'a Plan,
        params: &'a [f64],
        ctx: &'a RunCtx,
        region: IterRegion,
    ) -> Self {
        CellCursor {
            tape,
            plan,
            params,
            ctx,
            region,
            rng: CellRng::new(ctx.seed),
        }
    }

    /// Execute one outer-loop iteration (levels 1..3 at the right depths).
    fn run_outer(
        &mut self,
        regs: &mut [f64],
        read_data: &[&[f64]],
        write: &mut impl FnMut(usize, f64, usize),
        o: usize,
    ) {
        let order = self.tape.loop_order;
        let (s0, s1, s2, s3) = (
            self.plan.sec[0],
            self.plan.sec[1],
            self.plan.sec[2],
            self.plan.sec[3],
        );
        let mut idx3 = [0usize; 3];
        idx3[order[0]] = o;
        self.exec_section_rw(regs, read_data, write, s0, s1, idx3);
        for m in self.region.lo[order[1]]..self.region.hi[order[1]] {
            idx3[order[1]] = m;
            self.exec_section_rw(regs, read_data, write, s1, s2, idx3);
            for x in self.region.lo[order[2]]..self.region.hi[order[2]] {
                idx3[order[2]] = x;
                self.exec_section_rw(regs, read_data, write, s2, s3, idx3);
            }
        }
    }

    fn exec_section(
        &mut self,
        regs: &mut [f64],
        read_data: &[&[f64]],
        from: usize,
        to: usize,
        idx3: [usize; 3],
    ) {
        self.exec_section_rw(regs, read_data, &mut |_, _, _| {}, from, to, idx3);
    }

    #[inline]
    fn exec_section_rw(
        &mut self,
        regs: &mut [f64],
        read_data: &[&[f64]],
        write: &mut impl FnMut(usize, f64, usize),
        from: usize,
        to: usize,
        idx3: [usize; 3],
    ) {
        let ctx = self.ctx;
        let approx = self.tape.approx;
        for i in from..to {
            let v = match self.plan.steps[i] {
                Step::Op(op) => match op {
                    TapeOp::Const(c) => c.0,
                    TapeOp::Param(p) => self.params[p as usize],
                    TapeOp::Coord(d) => {
                        let dd = d as usize;
                        (ctx.origin[dd] as f64 + idx3[dd] as f64 + 0.5) * ctx.dx[dd]
                    }
                    TapeOp::Time => ctx.time,
                    TapeOp::CellIdx(d) => {
                        let dd = d as usize;
                        ctx.origin[dd] as f64 + idx3[dd] as f64
                    }
                    TapeOp::Rand(lane) => self.rng.uniform_pm1(
                        [
                            ctx.origin[0] + idx3[0] as i64,
                            ctx.origin[1] + idx3[1] as i64,
                            ctx.origin[2] + idx3[2] as i64,
                        ],
                        ctx.timestep,
                        lane as u32,
                    ),
                    TapeOp::Add(a, b) => regs[a.0 as usize] + regs[b.0 as usize],
                    TapeOp::Sub(a, b) => regs[a.0 as usize] - regs[b.0 as usize],
                    TapeOp::Mul(a, b) => regs[a.0 as usize] * regs[b.0 as usize],
                    TapeOp::Div(a, b) => {
                        if approx.fast_div {
                            f32_div(regs[a.0 as usize], regs[b.0 as usize])
                        } else {
                            regs[a.0 as usize] / regs[b.0 as usize]
                        }
                    }
                    TapeOp::Neg(a) => -regs[a.0 as usize],
                    TapeOp::Sqrt(a) => {
                        if approx.fast_sqrt {
                            f32_sqrt(regs[a.0 as usize])
                        } else {
                            regs[a.0 as usize].sqrt()
                        }
                    }
                    TapeOp::RSqrt(a) => {
                        if approx.fast_rsqrt {
                            f32_rsqrt(regs[a.0 as usize])
                        } else {
                            1.0 / regs[a.0 as usize].sqrt()
                        }
                    }
                    TapeOp::Abs(a) => regs[a.0 as usize].abs(),
                    TapeOp::Min(a, b) => regs[a.0 as usize].min(regs[b.0 as usize]),
                    TapeOp::Max(a, b) => regs[a.0 as usize].max(regs[b.0 as usize]),
                    TapeOp::Exp(a) => regs[a.0 as usize].exp(),
                    TapeOp::Ln(a) => regs[a.0 as usize].ln(),
                    TapeOp::Sin(a) => regs[a.0 as usize].sin(),
                    TapeOp::Cos(a) => regs[a.0 as usize].cos(),
                    TapeOp::Tanh(a) => regs[a.0 as usize].tanh(),
                    TapeOp::Sign(a) => {
                        let x = regs[a.0 as usize];
                        if x > 0.0 {
                            1.0
                        } else if x < 0.0 {
                            -1.0
                        } else {
                            0.0
                        }
                    }
                    TapeOp::Floor(a) => regs[a.0 as usize].floor(),
                    TapeOp::Powf(a, b) => regs[a.0 as usize].powf(regs[b.0 as usize]),
                    TapeOp::CmpSelect { op, l, r, t, f } => {
                        if op.eval(regs[l.0 as usize], regs[r.0 as usize]) {
                            regs[t.0 as usize]
                        } else {
                            regs[f.0 as usize]
                        }
                    }
                    TapeOp::Fence => 0.0,
                    TapeOp::Load { .. } | TapeOp::Store { .. } => {
                        unreachable!("resolved in plan")
                    }
                },
                Step::Load { arr, delta } => {
                    let a = arr as usize;
                    let s = self.plan.read_strides[a];
                    let idx = self.plan.read_base[a]
                        + idx3[0] as isize * s[0]
                        + idx3[1] as isize * s[1]
                        + idx3[2] as isize * s[2]
                        + delta;
                    read_data[a][idx as usize]
                }
                Step::Store { arr, delta, val } => {
                    let a = arr as usize;
                    let s = self.plan.write_strides[a];
                    let idx = self.plan.write_base[a]
                        + idx3[0] as isize * s[0]
                        + idx3[1] as isize * s[1]
                        + idx3[2] as isize * s[2]
                        + delta;
                    let v = regs[val as usize];
                    write(idx as usize, v, a);
                    v
                }
            };
            regs[i] = v;
        }
    }
}

/// Measurement entry point for the autotuner: run a multi-pass kernel
/// (e.g. a split variant's face tapes plus its update) `sweeps` times under
/// `mode` and return the measured performance in MLUP/s.
///
/// One untimed warm-up sweep runs first so the measured sweeps see the
/// steady state the launch path sees: the plan cache already holds the
/// resolved (tape, geometry) plan, and for [`ExecMode::Native`] the kernel
/// artifact has already been compiled and dlopened (otherwise a cold
/// `rustc` invocation would be billed to the candidate's runtime).
///
/// Goes through [`run_kernel`] — the exact production entry, including its
/// serial/vectorized degradation paths — so a candidate is timed as it
/// would actually execute, not as an idealized variant of itself. The lattice
/// count is the sum of every pass's extended range (matching `exec.cells`).
pub fn time_tapes(
    tapes: &[&Tape],
    store: &mut FieldStore,
    params: &[f64],
    domain: [usize; 3],
    ctx: &RunCtx,
    mode: ExecMode,
    sweeps: usize,
) -> f64 {
    assert!(sweeps >= 1, "cannot time zero sweeps");
    for tape in tapes {
        run_kernel(tape, store, params, domain, ctx, mode);
    }
    let cells_per_sweep: usize = tapes
        .iter()
        .map(|t| {
            let e = extended_range(t, domain);
            e[0] * e[1] * e[2]
        })
        .sum();
    if pf_trace::enabled() {
        pf_trace::counter("exec.measure.runs").incr(1);
    }
    let t0 = std::time::Instant::now();
    for _ in 0..sweeps {
        for tape in tapes {
            run_kernel(tape, store, params, domain, ctx, mode);
        }
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    (cells_per_sweep * sweeps) as f64 / secs / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_fields::Layout;
    use pf_ir::{generate, GenOptions};
    use pf_stencil::{Assignment, Discretization, StencilKernel};
    use pf_symbolic::{Access, Expr, Field};

    /// Jacobi heat step: dst = src + dt·Δsrc (2D).
    fn heat_tapes() -> (Field, Field, pf_ir::Tape) {
        let src = Field::new("ex_src", 1, 2);
        let dst = Field::new("ex_dst", 1, 2);
        let disc = Discretization::isotropic(2, 1.0);
        let u = Expr::access(Access::center(src, 0));
        let rhs: Expr = (0..2)
            .map(|d| Expr::d(Expr::num(1.0) * Expr::d(u.clone(), d), d))
            .sum();
        let update = disc.explicit_euler(Access::center(src, 0), &rhs, 0.1);
        let k = StencilKernel::new(
            "heat",
            vec![Assignment::store(Access::center(dst, 0), update)],
        );
        let tape = generate(&k, &GenOptions::default());
        (src, dst, tape)
    }

    fn setup(src: Field, dst: Field, n: usize) -> FieldStore {
        let mut store = FieldStore::new();
        store
            .allocate(src, [n, n, 1], 1, Layout::Fzyx)
            .fill_with(0, |x, y, _| ((x * 31 + y * 17) % 7) as f64);
        store.get_mut(src).apply_periodic(0);
        store.get_mut(src).apply_periodic(1);
        store.allocate(dst, [n, n, 1], 1, Layout::Fzyx);
        store
    }

    #[test]
    #[should_panic(expected = "does not fit its bound storage")]
    fn launch_gate_rejects_out_of_halo_loads() {
        // A second-neighbour load against single-ghost storage must be
        // refused at launch, before any memory is touched.
        let src = Field::new("ex_gate_src", 1, 2);
        let dst = Field::new("ex_gate_dst", 1, 2);
        let k = StencilKernel::new(
            "gate",
            vec![Assignment::store(
                Access::center(dst, 0),
                Expr::access(Access::at(src, 0, [2, 0, 0])),
            )],
        );
        let tape = generate(&k, &GenOptions::default());
        let mut store = setup(src, dst, 8);
        run_kernel(
            &tape,
            &mut store,
            &[],
            [8, 8, 1],
            &RunCtx::default(),
            ExecMode::Serial,
        );
    }

    #[test]
    fn heat_step_conserves_mass_with_periodic_bc() {
        let (src, dst, tape) = heat_tapes();
        let mut store = setup(src, dst, 16);
        let before = store.get(src).interior_sum(0);
        run_kernel(
            &tape,
            &mut store,
            &[],
            [16, 16, 1],
            &RunCtx::default(),
            ExecMode::Serial,
        );
        let after = store.get(dst).interior_sum(0);
        assert!((before - after).abs() < 1e-9, "{before} vs {after}");
    }

    #[test]
    fn serial_parallel_and_vectorized_agree_bitwise() {
        // 20 % 8 = 4: the vectorized run exercises the remainder loop too.
        let (src, dst, tape) = heat_tapes();
        let mut s1 = setup(src, dst, 20);
        let mut s2 = setup(src, dst, 20);
        let mut s3 = setup(src, dst, 20);
        for (store, mode) in [
            (&mut s1, ExecMode::Serial),
            (&mut s2, ExecMode::Parallel),
            (&mut s3, ExecMode::Vectorized),
        ] {
            run_kernel(&tape, store, &[], [20, 20, 1], &RunCtx::default(), mode);
        }
        assert_eq!(s1.get(dst).max_abs_diff(s2.get(dst)), 0.0);
        assert_eq!(s1.get(dst).max_abs_diff(s3.get(dst)), 0.0);
    }

    #[test]
    fn non_centre_outer_store_is_typed_error_with_serial_fallback() {
        // A store offset along the outer loop dimension (z for the default
        // [2,1,0] order) breaks the parallel partitioning: the checked API
        // reports it as a typed error, the infallible API falls back to a
        // serial launch that produces the same cells as ExecMode::Serial.
        let src = Field::new("ex_nc_src", 1, 3);
        let dst = Field::new("ex_nc_dst", 1, 3);
        let k = StencilKernel::new(
            "nc_store",
            vec![Assignment::store(
                Access::at(dst, 0, [0, 0, 1]),
                Expr::access(Access::center(src, 0)),
            )],
        );
        let tape = generate(&k, &GenOptions::default());
        assert_eq!(tape.loop_order[0], 2, "z must be the outer loop here");
        let mk = || {
            let mut store = FieldStore::new();
            store
                .allocate(src, [8, 4, 4], 1, Layout::Fzyx)
                .fill_with(0, |x, y, z| (x * 5 + y * 3 + z) as f64);
            store.allocate(dst, [8, 4, 4], 1, Layout::Fzyx);
            store
        };
        let ctx = RunCtx::default();

        let mut serial = mk();
        run_kernel(&tape, &mut serial, &[], [8, 4, 4], &ctx, ExecMode::Serial);

        for mode in [ExecMode::Parallel, ExecMode::Vectorized] {
            let mut s = mk();
            let err = run_kernel_checked(&tape, &mut s, &[], [8, 4, 4], &ctx, mode)
                .expect_err("off-centre outer store must be rejected");
            match &err {
                ExecError::NonCentreStore {
                    kernel,
                    dim,
                    offset,
                } => {
                    assert_eq!(kernel, "nc_store");
                    assert_eq!(*dim, 2);
                    assert_eq!(*offset, 1);
                }
                other => panic!("expected NonCentreStore, got {other:?}"),
            }
            assert!(err.to_string().contains("outer loop"), "{err}");
            // Checked failure leaves the destination untouched…
            assert!(s.get(dst).max_abs_diff(serial.get(dst)) > 0.0);
            // …and the infallible API completes via the serial fallback.
            let mut f = mk();
            run_kernel(&tape, &mut f, &[], [8, 4, 4], &ctx, mode);
            assert_eq!(f.get(dst).max_abs_diff(serial.get(dst)), 0.0);
        }
    }

    #[test]
    fn exec_cells_meters_the_extended_iteration_range() {
        // Regression: the counter used to multiply the interior `domain`
        // while the loops sweep domain + iter_extent — a face kernel over
        // [4,4,1] actually visits 5·4·1 = 20 cells, not 16.
        let src = Field::new("ex_mt_src", 1, 2);
        let flux = Field::new("ex_mt_flux", 1, 2);
        let d = Expr::access(Access::center(src, 0)) - Expr::access(Access::at(src, 0, [-1, 0, 0]));
        let mut k = StencilKernel::new(
            "meter_faces",
            vec![Assignment::store(Access::center(flux, 0), d)],
        );
        k.iter_extent = [1, 0, 0];
        let tape = generate(&k, &GenOptions::default());
        let mut store = FieldStore::new();
        store
            .allocate(src, [4, 4, 1], 1, Layout::Fzyx)
            .fill_with(0, |x, _, _| x as f64);
        store.allocate(flux, [5, 5, 1], 0, Layout::Fzyx);
        let before = pf_trace::counter("exec.cells.meter_faces").value();
        run_kernel(
            &tape,
            &mut store,
            &[],
            [4, 4, 1],
            &RunCtx::default(),
            ExecMode::Serial,
        );
        let after = pf_trace::counter("exec.cells.meter_faces").value();
        if pf_trace::enabled() {
            assert_eq!(after - before, 20, "ext = (4+1)·4·1 cells per launch");
        }
    }

    /// The plan cache is process-global; tests asserting exact hit/miss or
    /// eviction counts must not interleave.
    fn plan_cache_test_lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    #[test]
    fn region_launches_tile_to_a_bitwise_identical_full_sweep() {
        // Split a 3D diffusion + Philox-noise sweep into interior plus
        // frontier shells: running the pieces must reproduce the full
        // launch bit for bit in every execution mode (the property the
        // overlapped distributed schedule rests on).
        use pf_grid::split_frontier;
        let src = Field::new("ex_rg_src", 1, 3);
        let dst = Field::new("ex_rg_dst", 1, 3);
        let disc = Discretization::isotropic(3, 1.0);
        let u = Expr::access(Access::center(src, 0));
        let rhs: Expr = (0..3)
            .map(|d| Expr::d(Expr::num(1.0) * Expr::d(u.clone(), d), d))
            .sum();
        let update = disc.explicit_euler(Access::center(src, 0), &rhs, 0.05) + Expr::rand(0) * 0.01;
        let k = StencilKernel::new(
            "region_tiled",
            vec![Assignment::store(Access::center(dst, 0), update)],
        );
        let tape = generate(&k, &GenOptions::default());
        // 20 % 8 = 4: vectorized strips hit the remainder loop too.
        let domain = [20usize, 6, 5];
        let mk = || {
            let mut store = FieldStore::new();
            store
                .allocate(src, domain, 1, Layout::Fzyx)
                .fill_with(0, |x, y, z| ((x * 7 + y * 3 + z) % 11) as f64);
            for d in 0..3 {
                store.get_mut(src).apply_periodic(d);
            }
            store.allocate(dst, domain, 1, Layout::Fzyx);
            store
        };
        let ctx = RunCtx {
            seed: 42,
            ..RunCtx::default()
        };
        for mode in [ExecMode::Serial, ExecMode::Parallel, ExecMode::Vectorized] {
            let mut full = mk();
            run_kernel(&tape, &mut full, &[], domain, &ctx, mode);
            let mut split = mk();
            let (interior, shells) = split_frontier(domain, [1; 3], [2, 1, 1]);
            run_kernel_region(&tape, &mut split, &[], domain, interior, &ctx, mode);
            for r in &shells {
                run_kernel_region(&tape, &mut split, &[], domain, *r, &ctx, mode);
            }
            assert_eq!(
                full.get(dst).max_abs_diff(split.get(dst)),
                0.0,
                "mode {mode:?}"
            );
        }
    }

    #[test]
    fn plan_cache_evicts_oldest_half_at_capacity() {
        let _guard = plan_cache_test_lock()
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let src = Field::new("ex_ev_src", 1, 1);
        let dst = Field::new("ex_ev_dst", 1, 1);
        let k = StencilKernel::new(
            "plan_evict",
            vec![Assignment::store(
                Access::center(dst, 0),
                Expr::access(Access::center(src, 0)),
            )],
        );
        let tape = generate(&k, &GenOptions::default());
        // Vary the y extent: distinct y shapes give distinct z strides and
        // base offsets (x extents are padded to the SIMD width, so nearby
        // x shapes would collapse onto one storage geometry).
        let launch = |n: usize| {
            let mut store = FieldStore::new();
            store.allocate(src, [4, n, 1], 1, Layout::Fzyx);
            store.allocate(dst, [4, n, 1], 1, Layout::Fzyx);
            run_kernel(
                &tape,
                &mut store,
                &[],
                [4, n, 1],
                &RunCtx::default(),
                ExecMode::Serial,
            );
        };
        let evictions = || pf_trace::counter("exec.plan_cache.evict").value();
        let hits = || pf_trace::counter("exec.plan_cache.hit.plan_evict").value();
        let misses = || pf_trace::counter("exec.plan_cache.miss.plan_evict").value();
        let e0 = evictions();
        // Fill the cache past capacity with distinct storage geometries.
        for n in 0..(PLAN_CACHE_CAP + 8) {
            launch(4 + n);
        }
        if pf_trace::enabled() {
            assert!(
                evictions() - e0 >= (PLAN_CACHE_CAP / 2) as u64,
                "filling past capacity must evict about half, got {}",
                evictions() - e0
            );
            // The guard keeps the *newest* half: the last geometry must
            // still be cached (the old guard cleared everything).
            let (h0, m0) = (hits(), misses());
            launch(4 + PLAN_CACHE_CAP + 7);
            assert_eq!(hits() - h0, 1, "most recent plan survives eviction");
            assert_eq!(misses() - m0, 0);
        }
    }

    #[test]
    fn plan_cache_resolves_once_per_kernel_and_shape() {
        let _guard = plan_cache_test_lock()
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let src = Field::new("ex_pc_src", 1, 2);
        let dst = Field::new("ex_pc_dst", 1, 2);
        let k = StencilKernel::new(
            "plan_cached",
            vec![Assignment::store(
                Access::center(dst, 0),
                Expr::access(Access::center(src, 0)) * 2.0,
            )],
        );
        let tape = generate(&k, &GenOptions::default());
        let hits = || pf_trace::counter("exec.plan_cache.hit.plan_cached").value();
        let misses = || pf_trace::counter("exec.plan_cache.miss.plan_cached").value();
        let (h0, m0) = (hits(), misses());
        let launch = |n: usize| {
            let mut store = FieldStore::new();
            store.allocate(src, [n, n, 1], 1, Layout::Fzyx);
            store.allocate(dst, [n, n, 1], 1, Layout::Fzyx);
            for _ in 0..3 {
                run_kernel(
                    &tape,
                    &mut store,
                    &[],
                    [n, n, 1],
                    &RunCtx::default(),
                    ExecMode::Serial,
                );
            }
        };
        launch(8);
        if pf_trace::enabled() {
            assert_eq!(misses() - m0, 1, "resolve() once for the first shape");
            assert_eq!(hits() - h0, 2, "subsequent launches hit the cache");
        }
        launch(12);
        if pf_trace::enabled() {
            assert_eq!(misses() - m0, 2, "a new block shape re-resolves");
            assert_eq!(hits() - h0, 4);
        }
    }

    #[test]
    fn matches_reference_interpreter_per_cell() {
        let (src, dst, tape) = heat_tapes();
        let mut store = setup(src, dst, 8);
        let src_copy = store.get(src).clone();
        run_kernel(
            &tape,
            &mut store,
            &[],
            [8, 8, 1],
            &RunCtx::default(),
            ExecMode::Serial,
        );
        // Reference: interpret per cell with a MapCtx-backed env.
        for y in 0..8isize {
            for x in 0..8isize {
                let mut ctx = pf_symbolic::MapCtx::new();
                for op in &tape.instrs {
                    if let TapeOp::Load { field, comp, off } = op {
                        let f = tape.fields[*field as usize];
                        let acc = Access::at(
                            f,
                            *comp as usize,
                            [off[0] as i32, off[1] as i32, off[2] as i32],
                        );
                        ctx.set_access(
                            acc,
                            src_copy.get(
                                *comp as usize,
                                x + off[0] as isize,
                                y + off[1] as isize,
                                0,
                            ),
                        );
                    }
                }
                let r = pf_ir::interp_expr_context(&tape, &ctx);
                let want = r.stores[0].1;
                let got = store.get(dst).get(0, x, y, 0);
                assert!(
                    (got - want).abs() < 1e-14,
                    "cell ({x},{y}): {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn fluctuation_kernels_are_reproducible() {
        let dst = Field::new("ex_rand_dst", 1, 2);
        let k = StencilKernel::new(
            "noise",
            vec![Assignment::store(
                Access::center(dst, 0),
                Expr::rand(0) * 0.01,
            )],
        );
        let tape = generate(&k, &GenOptions::default());
        let run = |mode| {
            let mut store = FieldStore::new();
            store.allocate(dst, [6, 6, 1], 1, Layout::Fzyx);
            run_kernel(&tape, &mut store, &[], [6, 6, 1], &RunCtx::default(), mode);
            store.take(dst)
        };
        let a = run(ExecMode::Serial);
        let b = run(ExecMode::Parallel);
        let c = run(ExecMode::Vectorized);
        assert_eq!(a.max_abs_diff(&b), 0.0, "Philox must be order-independent");
        assert_eq!(
            a.max_abs_diff(&c),
            0.0,
            "per-strip Philox lanes match serial"
        );
        // And nonzero noise was actually produced.
        assert!(a.interior_sum(0).abs() > 0.0 || a.get(0, 1, 1, 0) != 0.0);
    }

    #[test]
    fn approx_division_changes_low_bits_only() {
        let src = Field::new("ex_ap_src", 1, 2);
        let dst = Field::new("ex_ap_dst", 1, 2);
        let rhs = Expr::one() / (Expr::access(Access::center(src, 0)) + 3.0);
        let k = StencilKernel::new("ap", vec![Assignment::store(Access::center(dst, 0), rhs)]);
        let mut exact = generate(&k, &GenOptions::default());
        let mut approx = exact.clone();
        approx.approx.fast_div = true;
        let _ = &mut exact;

        let run = |tape: &pf_ir::Tape| {
            let mut store = FieldStore::new();
            store
                .allocate(src, [4, 4, 1], 1, Layout::Fzyx)
                .fill_with(0, |x, y, _| (x + y) as f64 * 0.37);
            store.allocate(dst, [4, 4, 1], 1, Layout::Fzyx);
            run_kernel(
                tape,
                &mut store,
                &[],
                [4, 4, 1],
                &RunCtx::default(),
                ExecMode::Serial,
            );
            store.take(dst)
        };
        let e = run(&exact);
        let a = run(&approx);
        let diff = e.max_abs_diff(&a);
        assert!(diff > 0.0, "approx mode should differ slightly");
        assert!(diff < 1e-6, "but only in low bits, got {diff}");
    }

    #[test]
    fn face_kernel_iterates_extended_domain() {
        // A staggered-style kernel writing x-faces (extent+1 along x).
        let src = Field::new("ex_fc_src", 1, 2);
        let flux = Field::new("ex_fc_flux", 1, 2);
        let d = Expr::access(Access::center(src, 0)) - Expr::access(Access::at(src, 0, [-1, 0, 0]));
        let mut k =
            StencilKernel::new("faces", vec![Assignment::store(Access::center(flux, 0), d)]);
        k.iter_extent = [1, 0, 0];
        let tape = generate(&k, &GenOptions::default());
        let mut store = FieldStore::new();
        store
            .allocate(src, [4, 4, 1], 1, Layout::Fzyx)
            .fill_with(0, |x, _, _| (x * x) as f64);
        store.get_mut(src).apply_periodic(0);
        store.allocate(flux, [5, 5, 1], 0, Layout::Fzyx);
        run_kernel(
            &tape,
            &mut store,
            &[],
            [4, 4, 1],
            &RunCtx::default(),
            ExecMode::Serial,
        );
        // interior face 2 = u(2) − u(1) = 4 − 1
        assert_eq!(store.get(flux).get(0, 2, 0, 0), 3.0);
        // extended face 4 = u(4) − u(3) = ghost(= u(0)) − u(3) = 0 − 9
        assert_eq!(store.get(flux).get(0, 4, 0, 0), -9.0);
        // face 0 = u(0) − u(−1) = 0 − ghost(= u(3)) = −9
        assert_eq!(store.get(flux).get(0, 0, 0, 0), -9.0);
    }
}
