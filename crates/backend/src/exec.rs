//! The native kernel executor.
//!
//! Runs a compiled tape over a block: the moral equivalent of the paper's
//! generated C/OpenMP code. Loads and stores are resolved to (array, linear
//! offset) pairs once per launch; the spatial loops then execute the tape's
//! level sections at the right loop depths (LICM hoisting), serially or
//! parallelized over the outermost loop with rayon (the OpenMP analogue).
//!
//! The only `unsafe` in the whole workspace lives here: the parallel path
//! writes disjoint outer-loop slabs of the destination arrays through a
//! shared pointer. The disjointness invariant is asserted before entering
//! the parallel region (all stores target the centre cell, so two different
//! outer-loop indices can never write the same address).

use crate::store::FieldStore;
use pf_fields::FieldArray;
use pf_ir::{Tape, TapeOp};
use pf_rng::CellRng;
use rayon::prelude::*;

/// Per-launch execution context.
#[derive(Clone, Copy, Debug)]
pub struct RunCtx {
    /// Simulation time at this step.
    pub time: f64,
    /// Time step index (Philox counter component).
    pub timestep: u64,
    /// Grid spacing.
    pub dx: [f64; 3],
    /// Global index of this block's (0,0,0) cell (multi-block runs).
    pub origin: [i64; 3],
    /// RNG seed.
    pub seed: u32,
}

impl Default for RunCtx {
    fn default() -> Self {
        RunCtx {
            time: 0.0,
            timestep: 0,
            dx: [1.0; 3],
            origin: [0; 3],
            seed: 0,
        }
    }
}

/// How to run the spatial loops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    Serial,
    /// Parallelize the outermost spatial loop across the rayon pool.
    Parallel,
}

/// A tape instruction with its memory accesses resolved.
#[derive(Clone, Copy, Debug)]
enum Step {
    Op(TapeOp),
    /// Load from read-array `arr` at `cell_base + delta`.
    Load {
        arr: u16,
        delta: isize,
    },
    /// Store to write-array `arr` at `cell_base + delta`.
    Store {
        arr: u16,
        delta: isize,
        val: u32,
    },
}

struct Plan {
    steps: Vec<Step>,
    /// level boundaries: steps[..sec[0]] = level 0, ..sec[1] = ≤1, etc.
    sec: [usize; 4],
    /// strides (x,y,z) of each read array
    read_strides: Vec<[isize; 3]>,
    read_base: Vec<isize>,
    write_strides: Vec<[isize; 3]>,
    write_base: Vec<isize>,
}

fn resolve(
    tape: &Tape,
    reads: &[&FieldArray],
    writes: &[FieldArray],
    read_map: &[usize],
    write_map: &[usize],
) -> Plan {
    let mut steps = Vec::with_capacity(tape.instrs.len());
    for op in &tape.instrs {
        match *op {
            TapeOp::Load { field, comp, off } => {
                let arr_idx = read_map[field as usize];
                let arr = reads[arr_idx];
                let [sc, sx, sy, sz] = arr.strides();
                let delta = comp as isize * sc
                    + off[0] as isize * sx
                    + off[1] as isize * sy
                    + off[2] as isize * sz;
                steps.push(Step::Load {
                    arr: arr_idx as u16,
                    delta,
                });
            }
            TapeOp::Store {
                field,
                comp,
                off,
                val,
            } => {
                let arr_idx = write_map[field as usize];
                let arr = &writes[arr_idx];
                let [sc, sx, sy, sz] = arr.strides();
                let delta = comp as isize * sc
                    + off[0] as isize * sx
                    + off[1] as isize * sy
                    + off[2] as isize * sz;
                steps.push(Step::Store {
                    arr: arr_idx as u16,
                    delta,
                    val: val.0,
                });
            }
            other => steps.push(Step::Op(other)),
        }
    }
    // Level sections are only usable when levels are monotone (the LICM
    // pass sorts them; GPU-oriented reschedules may not preserve this — then
    // everything runs per cell, which is always correct).
    let monotone = tape.levels.windows(2).all(|w| w[0] <= w[1]);
    let mut sec = [tape.instrs.len(); 4];
    if monotone {
        for (lvl, s) in sec.iter_mut().enumerate() {
            *s = tape
                .levels
                .iter()
                .position(|&l| l as usize > lvl)
                .unwrap_or(tape.instrs.len());
        }
    } else {
        sec[0] = 0;
        sec[1] = 0;
        sec[2] = 0;
    }
    let base_of = |arr: &FieldArray| -> isize { arr.index(0, 0, 0, 0) as isize };
    Plan {
        steps,
        sec,
        read_strides: reads
            .iter()
            .map(|a| {
                let [_, sx, sy, sz] = a.strides();
                [sx, sy, sz]
            })
            .collect(),
        read_base: reads.iter().map(|a| base_of(a)).collect(),
        write_strides: writes
            .iter()
            .map(|a| {
                let [_, sx, sy, sz] = a.strides();
                [sx, sy, sz]
            })
            .collect(),
        write_base: writes.iter().map(base_of).collect(),
    }
}

/// Shared mutable view over a write array for the parallel path. Safety rests
/// on the caller guaranteeing disjoint index sets per thread.
#[derive(Clone, Copy)]
struct RawSlice {
    ptr: *mut f64,
    len: usize,
}
unsafe impl Send for RawSlice {}
unsafe impl Sync for RawSlice {}

impl RawSlice {
    #[inline]
    unsafe fn write(&self, idx: usize, v: f64) {
        debug_assert!(idx < self.len);
        unsafe { *self.ptr.add(idx) = v }
    }
}

#[inline]
fn f32_div(a: f64, b: f64) -> f64 {
    (a as f32 / b as f32) as f64
}

#[inline]
fn f32_sqrt(a: f64) -> f64 {
    (a as f32).sqrt() as f64
}

#[inline]
fn f32_rsqrt(a: f64) -> f64 {
    (1.0 / (a as f32).sqrt()) as f64
}

/// Execute `tape` over the block interior (plus its `iter_extent`).
///
/// `domain` is the block's interior cell shape; the written arrays must be
/// sized to accept the extended iteration range of face kernels.
pub fn run_kernel(
    tape: &Tape,
    store: &mut FieldStore,
    params: &[f64],
    domain: [usize; 3],
    ctx: &RunCtx,
    mode: ExecMode,
) {
    assert_eq!(
        params.len(),
        tape.params.len(),
        "kernel {} expects {} parameters",
        tape.name,
        tape.params.len()
    );

    // Observability: one span + two counter bumps per launch (a launch
    // sweeps a whole block, so this is far off the per-cell hot path).
    if pf_trace::enabled() {
        pf_trace::counter(&format!("exec.launches.{}", tape.name)).incr(1);
        pf_trace::counter("exec.cells").incr((domain[0] * domain[1] * domain[2]) as u64);
    }
    let _launch_span = pf_trace::span_lazy(|| format!("exec.kernel.{}", tape.name));

    // Partition fields into read-only and written.
    let mut written: Vec<u16> = Vec::new();
    for op in &tape.instrs {
        if let TapeOp::Store { field, .. } = op {
            if !written.contains(field) {
                written.push(*field);
            }
        }
    }
    for op in &tape.instrs {
        if let TapeOp::Load { field, .. } = op {
            assert!(
                !written.contains(field),
                "kernel {} reads and writes field {} — Jacobi-style kernels only",
                tape.name,
                tape.fields[*field as usize].name()
            );
        }
    }

    // Split borrows: take written arrays out of the store.
    let mut write_map = vec![usize::MAX; tape.fields.len()];
    let mut writes: Vec<FieldArray> = Vec::new();
    for (slot, f) in tape.fields.iter().enumerate() {
        if written.contains(&(slot as u16)) {
            write_map[slot] = writes.len();
            writes.push(store.take(*f));
        }
    }
    {
        let mut read_map = vec![usize::MAX; tape.fields.len()];
        let mut reads: Vec<&FieldArray> = Vec::new();
        for (slot, f) in tape.fields.iter().enumerate() {
            if write_map[slot] == usize::MAX {
                read_map[slot] = reads.len();
                reads.push(store.get(*f));
            }
        }
        // Launch gate: prove every access fits the bound arrays' actual
        // ghost layers and padding before touching any memory. This is the
        // runtime completion of pf-analyze's halo pass — generation-time
        // verification cannot know what storage a caller will bind.
        if pf_ir::verify_enabled() {
            let allocs: Vec<pf_analyze::FieldAlloc> = (0..tape.fields.len())
                .map(|slot| {
                    let arr: &FieldArray = if write_map[slot] != usize::MAX {
                        &writes[write_map[slot]]
                    } else {
                        reads[read_map[slot]]
                    };
                    let shape = arr.shape();
                    pf_analyze::FieldAlloc {
                        ghost: arr.ghost_layers(),
                        pad: [
                            shape[0].saturating_sub(domain[0]),
                            shape[1].saturating_sub(domain[1]),
                            shape[2].saturating_sub(domain[2]),
                        ],
                    }
                })
                .collect();
            let halo = pf_analyze::check_halo(tape, &allocs);
            assert!(
                halo.is_empty(),
                "kernel {} does not fit its bound storage:\n{}",
                tape.name,
                pf_analyze::render(&halo)
            );
        }

        let plan = resolve(tape, &reads, &writes, &read_map, &write_map);
        let read_data: Vec<&[f64]> = reads.iter().map(|a| a.data()).collect();

        let ext = [
            domain[0] + tape.iter_extent[0],
            domain[1] + tape.iter_extent[1],
            domain[2] + tape.iter_extent[2],
        ];
        let order = tape.loop_order;
        let outer_n = ext[order[0]];

        match mode {
            ExecMode::Serial => {
                let mut write_data: Vec<&mut [f64]> =
                    writes.iter_mut().map(|a| a.data_mut()).collect();
                let mut regs = vec![0.0f64; tape.instrs.len()];
                let mut cell = CellCursor::new(tape, &plan, params, ctx, ext);
                cell.exec_section(&mut regs, &read_data, 0, plan.sec[0], [0; 3]);
                for o in 0..outer_n {
                    cell.run_outer(
                        &mut regs,
                        &read_data,
                        &mut |idx, v, arr| write_data[arr][idx] = v,
                        o,
                    );
                }
            }
            ExecMode::Parallel => {
                // Disjointness: every store writes the centre cell along the
                // outer dimension, so distinct outer indices are disjoint.
                for op in &tape.instrs {
                    if let TapeOp::Store { off, .. } = op {
                        assert_eq!(
                            off[order[0]], 0,
                            "parallel execution requires centre stores along the outer loop"
                        );
                    }
                }
                let raw: Vec<RawSlice> = writes
                    .iter_mut()
                    .map(|a| {
                        let d = a.data_mut();
                        RawSlice {
                            ptr: d.as_mut_ptr(),
                            len: d.len(),
                        }
                    })
                    .collect();
                let raw = &raw;
                let plan_ref = &plan;
                let read_data = &read_data;
                (0..outer_n).into_par_iter().for_each(|o| {
                    let mut regs = vec![0.0f64; tape.instrs.len()];
                    let mut cell = CellCursor::new(tape, plan_ref, params, ctx, ext);
                    cell.exec_section(&mut regs, read_data, 0, plan_ref.sec[0], [0; 3]);
                    cell.run_outer(
                        &mut regs,
                        read_data,
                        // SAFETY: distinct `o` values write disjoint cells
                        // (asserted above), and each array index is in
                        // bounds by construction of the plan deltas.
                        &mut |idx, v, arr| unsafe { raw[arr].write(idx, v) },
                        o,
                    );
                });
            }
        }
    }

    // Re-insert written arrays.
    let mut w = writes.into_iter();
    for (slot, f) in tape.fields.iter().enumerate() {
        if write_map[slot] != usize::MAX {
            store.insert(*f, w.next().expect("one array per written field"));
        }
    }
}

/// Loop driver holding the per-launch constants.
struct CellCursor<'a> {
    tape: &'a Tape,
    plan: &'a Plan,
    params: &'a [f64],
    ctx: &'a RunCtx,
    ext: [usize; 3],
    rng: CellRng,
}

impl<'a> CellCursor<'a> {
    fn new(
        tape: &'a Tape,
        plan: &'a Plan,
        params: &'a [f64],
        ctx: &'a RunCtx,
        ext: [usize; 3],
    ) -> Self {
        CellCursor {
            tape,
            plan,
            params,
            ctx,
            ext,
            rng: CellRng::new(ctx.seed),
        }
    }

    /// Execute one outer-loop iteration (levels 1..3 at the right depths).
    fn run_outer(
        &mut self,
        regs: &mut [f64],
        read_data: &[&[f64]],
        write: &mut impl FnMut(usize, f64, usize),
        o: usize,
    ) {
        let order = self.tape.loop_order;
        let (s0, s1, s2, s3) = (
            self.plan.sec[0],
            self.plan.sec[1],
            self.plan.sec[2],
            self.plan.sec[3],
        );
        let mut idx3 = [0usize; 3];
        idx3[order[0]] = o;
        self.exec_section_rw(regs, read_data, write, s0, s1, idx3);
        for m in 0..self.ext[order[1]] {
            idx3[order[1]] = m;
            self.exec_section_rw(regs, read_data, write, s1, s2, idx3);
            for x in 0..self.ext[order[2]] {
                idx3[order[2]] = x;
                self.exec_section_rw(regs, read_data, write, s2, s3, idx3);
            }
        }
    }

    fn exec_section(
        &mut self,
        regs: &mut [f64],
        read_data: &[&[f64]],
        from: usize,
        to: usize,
        idx3: [usize; 3],
    ) {
        self.exec_section_rw(regs, read_data, &mut |_, _, _| {}, from, to, idx3);
    }

    #[inline]
    fn exec_section_rw(
        &mut self,
        regs: &mut [f64],
        read_data: &[&[f64]],
        write: &mut impl FnMut(usize, f64, usize),
        from: usize,
        to: usize,
        idx3: [usize; 3],
    ) {
        let ctx = self.ctx;
        let approx = self.tape.approx;
        for i in from..to {
            let v = match self.plan.steps[i] {
                Step::Op(op) => match op {
                    TapeOp::Const(c) => c.0,
                    TapeOp::Param(p) => self.params[p as usize],
                    TapeOp::Coord(d) => {
                        let dd = d as usize;
                        (ctx.origin[dd] as f64 + idx3[dd] as f64 + 0.5) * ctx.dx[dd]
                    }
                    TapeOp::Time => ctx.time,
                    TapeOp::CellIdx(d) => {
                        let dd = d as usize;
                        ctx.origin[dd] as f64 + idx3[dd] as f64
                    }
                    TapeOp::Rand(lane) => self.rng.uniform_pm1(
                        [
                            ctx.origin[0] + idx3[0] as i64,
                            ctx.origin[1] + idx3[1] as i64,
                            ctx.origin[2] + idx3[2] as i64,
                        ],
                        ctx.timestep,
                        lane as u32,
                    ),
                    TapeOp::Add(a, b) => regs[a.0 as usize] + regs[b.0 as usize],
                    TapeOp::Sub(a, b) => regs[a.0 as usize] - regs[b.0 as usize],
                    TapeOp::Mul(a, b) => regs[a.0 as usize] * regs[b.0 as usize],
                    TapeOp::Div(a, b) => {
                        if approx.fast_div {
                            f32_div(regs[a.0 as usize], regs[b.0 as usize])
                        } else {
                            regs[a.0 as usize] / regs[b.0 as usize]
                        }
                    }
                    TapeOp::Neg(a) => -regs[a.0 as usize],
                    TapeOp::Sqrt(a) => {
                        if approx.fast_sqrt {
                            f32_sqrt(regs[a.0 as usize])
                        } else {
                            regs[a.0 as usize].sqrt()
                        }
                    }
                    TapeOp::RSqrt(a) => {
                        if approx.fast_rsqrt {
                            f32_rsqrt(regs[a.0 as usize])
                        } else {
                            1.0 / regs[a.0 as usize].sqrt()
                        }
                    }
                    TapeOp::Abs(a) => regs[a.0 as usize].abs(),
                    TapeOp::Min(a, b) => regs[a.0 as usize].min(regs[b.0 as usize]),
                    TapeOp::Max(a, b) => regs[a.0 as usize].max(regs[b.0 as usize]),
                    TapeOp::Exp(a) => regs[a.0 as usize].exp(),
                    TapeOp::Ln(a) => regs[a.0 as usize].ln(),
                    TapeOp::Sin(a) => regs[a.0 as usize].sin(),
                    TapeOp::Cos(a) => regs[a.0 as usize].cos(),
                    TapeOp::Tanh(a) => regs[a.0 as usize].tanh(),
                    TapeOp::Sign(a) => {
                        let x = regs[a.0 as usize];
                        if x > 0.0 {
                            1.0
                        } else if x < 0.0 {
                            -1.0
                        } else {
                            0.0
                        }
                    }
                    TapeOp::Floor(a) => regs[a.0 as usize].floor(),
                    TapeOp::Powf(a, b) => regs[a.0 as usize].powf(regs[b.0 as usize]),
                    TapeOp::CmpSelect { op, l, r, t, f } => {
                        if op.eval(regs[l.0 as usize], regs[r.0 as usize]) {
                            regs[t.0 as usize]
                        } else {
                            regs[f.0 as usize]
                        }
                    }
                    TapeOp::Fence => 0.0,
                    TapeOp::Load { .. } | TapeOp::Store { .. } => {
                        unreachable!("resolved in plan")
                    }
                },
                Step::Load { arr, delta } => {
                    let a = arr as usize;
                    let s = self.plan.read_strides[a];
                    let idx = self.plan.read_base[a]
                        + idx3[0] as isize * s[0]
                        + idx3[1] as isize * s[1]
                        + idx3[2] as isize * s[2]
                        + delta;
                    read_data[a][idx as usize]
                }
                Step::Store { arr, delta, val } => {
                    let a = arr as usize;
                    let s = self.plan.write_strides[a];
                    let idx = self.plan.write_base[a]
                        + idx3[0] as isize * s[0]
                        + idx3[1] as isize * s[1]
                        + idx3[2] as isize * s[2]
                        + delta;
                    let v = regs[val as usize];
                    write(idx as usize, v, a);
                    v
                }
            };
            regs[i] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_fields::Layout;
    use pf_ir::{generate, GenOptions};
    use pf_stencil::{Assignment, Discretization, StencilKernel};
    use pf_symbolic::{Access, Expr, Field};

    /// Jacobi heat step: dst = src + dt·Δsrc (2D).
    fn heat_tapes() -> (Field, Field, pf_ir::Tape) {
        let src = Field::new("ex_src", 1, 2);
        let dst = Field::new("ex_dst", 1, 2);
        let disc = Discretization::isotropic(2, 1.0);
        let u = Expr::access(Access::center(src, 0));
        let rhs: Expr = (0..2)
            .map(|d| Expr::d(Expr::num(1.0) * Expr::d(u.clone(), d), d))
            .sum();
        let update = disc.explicit_euler(Access::center(src, 0), &rhs, 0.1);
        let k = StencilKernel::new(
            "heat",
            vec![Assignment::store(Access::center(dst, 0), update)],
        );
        let tape = generate(&k, &GenOptions::default());
        (src, dst, tape)
    }

    fn setup(src: Field, dst: Field, n: usize) -> FieldStore {
        let mut store = FieldStore::new();
        store
            .allocate(src, [n, n, 1], 1, Layout::Fzyx)
            .fill_with(0, |x, y, _| ((x * 31 + y * 17) % 7) as f64);
        store.get_mut(src).apply_periodic(0);
        store.get_mut(src).apply_periodic(1);
        store.allocate(dst, [n, n, 1], 1, Layout::Fzyx);
        store
    }

    #[test]
    #[should_panic(expected = "does not fit its bound storage")]
    fn launch_gate_rejects_out_of_halo_loads() {
        // A second-neighbour load against single-ghost storage must be
        // refused at launch, before any memory is touched.
        let src = Field::new("ex_gate_src", 1, 2);
        let dst = Field::new("ex_gate_dst", 1, 2);
        let k = StencilKernel::new(
            "gate",
            vec![Assignment::store(
                Access::center(dst, 0),
                Expr::access(Access::at(src, 0, [2, 0, 0])),
            )],
        );
        let tape = generate(&k, &GenOptions::default());
        let mut store = setup(src, dst, 8);
        run_kernel(
            &tape,
            &mut store,
            &[],
            [8, 8, 1],
            &RunCtx::default(),
            ExecMode::Serial,
        );
    }

    #[test]
    fn heat_step_conserves_mass_with_periodic_bc() {
        let (src, dst, tape) = heat_tapes();
        let mut store = setup(src, dst, 16);
        let before = store.get(src).interior_sum(0);
        run_kernel(
            &tape,
            &mut store,
            &[],
            [16, 16, 1],
            &RunCtx::default(),
            ExecMode::Serial,
        );
        let after = store.get(dst).interior_sum(0);
        assert!((before - after).abs() < 1e-9, "{before} vs {after}");
    }

    #[test]
    fn serial_and_parallel_agree_bitwise() {
        let (src, dst, tape) = heat_tapes();
        let mut s1 = setup(src, dst, 20);
        let mut s2 = setup(src, dst, 20);
        run_kernel(
            &tape,
            &mut s1,
            &[],
            [20, 20, 1],
            &RunCtx::default(),
            ExecMode::Serial,
        );
        run_kernel(
            &tape,
            &mut s2,
            &[],
            [20, 20, 1],
            &RunCtx::default(),
            ExecMode::Parallel,
        );
        assert_eq!(s1.get(dst).max_abs_diff(s2.get(dst)), 0.0);
    }

    #[test]
    fn matches_reference_interpreter_per_cell() {
        let (src, dst, tape) = heat_tapes();
        let mut store = setup(src, dst, 8);
        let src_copy = store.get(src).clone();
        run_kernel(
            &tape,
            &mut store,
            &[],
            [8, 8, 1],
            &RunCtx::default(),
            ExecMode::Serial,
        );
        // Reference: interpret per cell with a MapCtx-backed env.
        for y in 0..8isize {
            for x in 0..8isize {
                let mut ctx = pf_symbolic::MapCtx::new();
                for op in &tape.instrs {
                    if let TapeOp::Load { field, comp, off } = op {
                        let f = tape.fields[*field as usize];
                        let acc = Access::at(
                            f,
                            *comp as usize,
                            [off[0] as i32, off[1] as i32, off[2] as i32],
                        );
                        ctx.set_access(
                            acc,
                            src_copy.get(
                                *comp as usize,
                                x + off[0] as isize,
                                y + off[1] as isize,
                                0,
                            ),
                        );
                    }
                }
                let r = pf_ir::interp_expr_context(&tape, &ctx);
                let want = r.stores[0].1;
                let got = store.get(dst).get(0, x, y, 0);
                assert!(
                    (got - want).abs() < 1e-14,
                    "cell ({x},{y}): {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn fluctuation_kernels_are_reproducible() {
        let dst = Field::new("ex_rand_dst", 1, 2);
        let k = StencilKernel::new(
            "noise",
            vec![Assignment::store(
                Access::center(dst, 0),
                Expr::rand(0) * 0.01,
            )],
        );
        let tape = generate(&k, &GenOptions::default());
        let run = |mode| {
            let mut store = FieldStore::new();
            store.allocate(dst, [6, 6, 1], 1, Layout::Fzyx);
            run_kernel(&tape, &mut store, &[], [6, 6, 1], &RunCtx::default(), mode);
            store.take(dst)
        };
        let a = run(ExecMode::Serial);
        let b = run(ExecMode::Parallel);
        assert_eq!(a.max_abs_diff(&b), 0.0, "Philox must be order-independent");
        // And nonzero noise was actually produced.
        assert!(a.interior_sum(0).abs() > 0.0 || a.get(0, 1, 1, 0) != 0.0);
    }

    #[test]
    fn approx_division_changes_low_bits_only() {
        let src = Field::new("ex_ap_src", 1, 2);
        let dst = Field::new("ex_ap_dst", 1, 2);
        let rhs = Expr::one() / (Expr::access(Access::center(src, 0)) + 3.0);
        let k = StencilKernel::new("ap", vec![Assignment::store(Access::center(dst, 0), rhs)]);
        let mut exact = generate(&k, &GenOptions::default());
        let mut approx = exact.clone();
        approx.approx.fast_div = true;
        let _ = &mut exact;

        let run = |tape: &pf_ir::Tape| {
            let mut store = FieldStore::new();
            store
                .allocate(src, [4, 4, 1], 1, Layout::Fzyx)
                .fill_with(0, |x, y, _| (x + y) as f64 * 0.37);
            store.allocate(dst, [4, 4, 1], 1, Layout::Fzyx);
            run_kernel(
                tape,
                &mut store,
                &[],
                [4, 4, 1],
                &RunCtx::default(),
                ExecMode::Serial,
            );
            store.take(dst)
        };
        let e = run(&exact);
        let a = run(&approx);
        let diff = e.max_abs_diff(&a);
        assert!(diff > 0.0, "approx mode should differ slightly");
        assert!(diff < 1e-6, "but only in low bits, got {diff}");
    }

    #[test]
    fn face_kernel_iterates_extended_domain() {
        // A staggered-style kernel writing x-faces (extent+1 along x).
        let src = Field::new("ex_fc_src", 1, 2);
        let flux = Field::new("ex_fc_flux", 1, 2);
        let d = Expr::access(Access::center(src, 0)) - Expr::access(Access::at(src, 0, [-1, 0, 0]));
        let mut k =
            StencilKernel::new("faces", vec![Assignment::store(Access::center(flux, 0), d)]);
        k.iter_extent = [1, 0, 0];
        let tape = generate(&k, &GenOptions::default());
        let mut store = FieldStore::new();
        store
            .allocate(src, [4, 4, 1], 1, Layout::Fzyx)
            .fill_with(0, |x, _, _| (x * x) as f64);
        store.get_mut(src).apply_periodic(0);
        store.allocate(flux, [5, 5, 1], 0, Layout::Fzyx);
        run_kernel(
            &tape,
            &mut store,
            &[],
            [4, 4, 1],
            &RunCtx::default(),
            ExecMode::Serial,
        );
        // interior face 2 = u(2) − u(1) = 4 − 1
        assert_eq!(store.get(flux).get(0, 2, 0, 0), 3.0);
        // extended face 4 = u(4) − u(3) = ghost(= u(0)) − u(3) = 0 − 9
        assert_eq!(store.get(flux).get(0, 4, 0, 0), -9.0);
        // face 0 = u(0) − u(−1) = 0 − ghost(= u(3)) = −9
        assert_eq!(store.get(flux).get(0, 0, 0, 0), -9.0);
    }
}
