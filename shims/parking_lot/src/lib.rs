//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny subset of `parking_lot` it actually uses: `Mutex` and
//! `RwLock` with the non-poisoning `lock()` / `read()` / `write()` API,
//! backed by the std primitives. Poisoning is erased by unwrapping into the
//! inner guard — a panic while holding a lock aborts the affected test
//! anyway, matching parking_lot's practical semantics here.

#![forbid(unsafe_code)]

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Non-poisoning mutex with parking_lot's `lock()` signature.
#[derive(Default, Debug)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Non-poisoning reader-writer lock with parking_lot's `read()`/`write()`.
#[derive(Default, Debug)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
