//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of rayon it uses: `(0..n).into_par_iter().for_each(f)`
//! and `ThreadPoolBuilder::num_threads(..).build().install(..)`. The
//! implementation is a plain chunked fork-join over `std::thread::scope`;
//! `install` bounds the worker count through a thread-local, mirroring how
//! the per-core scaling benchmarks use rayon pools.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::ops::Range;

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`];
    /// 0 = use the hardware parallelism.
    static NUM_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Worker count parallel iterators will use (the installed pool bound, or
/// the hardware parallelism). Mirrors `rayon::current_num_threads`.
pub fn current_num_threads() -> usize {
    let n = NUM_THREADS.with(|c| c.get());
    if n > 0 {
        n
    } else {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

/// The (tiny) parallel-iterator interface: parallel `for_each` plus
/// `for_each_init` for per-worker scratch reuse.
pub trait ParallelIterator: Sized {
    type Item: Send;
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send;

    /// Like `for_each`, but `init` runs once per worker thread and the
    /// resulting value is passed (mutably) to every item that worker
    /// processes — rayon's idiom for reusing scratch buffers instead of
    /// allocating one per item.
    fn for_each_init<I, T, F>(self, init: I, f: F)
    where
        I: Fn() -> T + Sync + Send,
        F: Fn(&mut T, Self::Item) + Sync + Send;
}

/// Parallel iterator over a `Range<usize>`.
pub struct RangeParIter(Range<usize>);

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = RangeParIter;
    fn into_par_iter(self) -> RangeParIter {
        RangeParIter(self)
    }
}

impl ParallelIterator for RangeParIter {
    type Item = usize;

    fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync + Send,
    {
        self.for_each_init(|| (), |(), i| f(i));
    }

    fn for_each_init<I, T, F>(self, init: I, f: F)
    where
        I: Fn() -> T + Sync + Send,
        F: Fn(&mut T, usize) + Sync + Send,
    {
        let Range { start, end } = self.0;
        let n = end.saturating_sub(start);
        if n == 0 {
            return;
        }
        let workers = current_num_threads().clamp(1, n);
        if workers == 1 {
            let mut scratch = init();
            for i in start..end {
                f(&mut scratch, i);
            }
            return;
        }
        // Static block partition: worker w owns [start + w·chunk, …).
        let chunk = n.div_ceil(workers);
        let f = &f;
        let init = &init;
        std::thread::scope(|s| {
            for w in 0..workers {
                let lo = start + w * chunk;
                let hi = (lo + chunk).min(end);
                if lo >= hi {
                    break;
                }
                s.spawn(move || {
                    let mut scratch = init();
                    for i in lo..hi {
                        f(&mut scratch, i);
                    }
                });
            }
        });
    }
}

/// Builder for a bounded "pool" (really a worker-count override).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type kept for API compatibility; building never fails here.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped worker-count override; `install` runs the closure with the
/// pool's thread count governing any parallel iterators inside it.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = NUM_THREADS.with(|c| c.replace(self.num_threads));
        let out = f();
        NUM_THREADS.with(|c| c.set(prev));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_for_each_visits_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        (0..100usize).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn install_bounds_and_restores_worker_count() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .expect("pool");
        let inside = pool.install(crate::current_num_threads);
        assert_eq!(inside, 2);
        assert_ne!(crate::current_num_threads(), 0);
    }

    #[test]
    fn empty_range_is_a_noop() {
        (5..5usize).into_par_iter().for_each(|_| panic!("no items"));
    }

    #[test]
    fn for_each_init_reuses_one_scratch_per_worker() {
        let inits = AtomicUsize::new(0);
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .expect("pool");
        pool.install(|| {
            (0..64usize).into_par_iter().for_each_init(
                || {
                    inits.fetch_add(1, Ordering::SeqCst);
                    vec![0u8; 16]
                },
                |scratch, i| {
                    scratch[0] = scratch[0].wrapping_add(1);
                    hits[i].fetch_add(1, Ordering::SeqCst);
                },
            );
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
        let n = inits.load(Ordering::SeqCst);
        assert!((1..=3).contains(&n), "one init per worker, got {n}");
    }
}
