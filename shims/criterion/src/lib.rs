//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the benchmark-harness subset its benches use: `benchmark_group`,
//! `sample_size`, `throughput`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Statistics are intentionally simple: each benchmark runs a short warm-up,
//! then `sample_size` timed samples, and reports the median per-iteration
//! time (plus derived throughput when one was declared). There is no outlier
//! analysis, no HTML report, and no baseline comparison — enough to smoke-run
//! `cargo bench` offline and eyeball regressions.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export with criterion's name; prevents the optimizer from deleting
/// benchmark bodies.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Declared work per iteration, used to derive throughput lines.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier: `function_id/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function_id: &str, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{function_id}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the collected samples.
    result: Duration,
}

impl Bencher {
    /// Time `f`, warm up briefly, and record the median per-iteration cost.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up + calibration: grow the iteration count until one sample
        // takes ≥ ~5ms so Instant overhead is negligible.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            per_iter.push(t.elapsed() / iters as u32);
        }
        per_iter.sort();
        self.result = per_iter[per_iter.len() / 2];
    }
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        self.run(id.into_benchmark_id(), f);
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.run(id.into_benchmark_id(), |b| f(b, input));
    }

    pub fn finish(&mut self) {}

    fn run(&mut self, id: String, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size,
            result: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.result;
        let rate = |count: u64| {
            if per_iter.is_zero() {
                f64::INFINITY
            } else {
                count as f64 / per_iter.as_secs_f64()
            }
        };
        let extra = match self.throughput {
            Some(Throughput::Elements(n)) => format!("  {:.3} Melem/s", rate(n) / 1e6),
            Some(Throughput::Bytes(n)) => format!("  {:.3} MiB/s", rate(n) / (1024.0 * 1024.0)),
            None => String::new(),
        };
        println!("{}/{:<32} {:>12.3?}/iter{}", self.name, id, per_iter, extra);
    }
}

/// Accept both `&str` names and `BenchmarkId`s, like criterion does.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.full
    }
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        self.benchmark_group(name.to_string())
            .bench_function("bench", f);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        let mut ran = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        assert!(ran > 0);
    }
}
