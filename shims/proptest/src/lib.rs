//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the strategy subset its property tests use: range strategies,
//! `Just`, `any::<bool>()`, tuple strategies, `prop_map`, `prop_oneof!`,
//! `prop_recursive`, `collection::vec`, and the `proptest!` test macro with
//! `#![proptest_config(..)]`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** Failures report the deterministic case seed instead;
//!   re-running reproduces the identical input sequence.
//! * **Deterministic generation.** Case `i` of test `name` is seeded from
//!   `fnv(name) ⊕ splitmix(i)`, so CI failures are always reproducible.
//! * `prop_assert!`/`prop_assert_eq!` panic like `assert!`, which the
//!   per-case harness turns into a normal test failure.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

/// SplitMix64 — tiny, fast, and plenty for test-case generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed for case `case` of test `name` (deterministic, well mixed).
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut rng = TestRng::from_seed(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // One warm-up step decorrelates nearby case indices.
        rng.next_u64();
        rng
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`. Modulo bias is irrelevant at test-case scale.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Config + runner
// ---------------------------------------------------------------------------

/// Subset of proptest's config: the number of cases per test.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Drive one property over `config.cases` deterministic cases.
pub fn run_cases(config: &ProptestConfig, name: &str, mut case: impl FnMut(&mut TestRng)) {
    for i in 0..config.cases {
        let mut rng = TestRng::for_case(name, i);
        case(&mut rng);
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A generator of test values. Unlike real proptest there is no value tree
/// or shrinking — `generate` produces the final value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Depth-bounded recursive strategy: each level generates either a leaf
    /// (this strategy) or one level of `recurse` over the next-shallower
    /// strategy. `desired_size`/`expected_branch_size` are accepted for API
    /// compatibility; the depth bound alone controls tree size here.
    fn prop_recursive<F, S2>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
        S2: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(cur).boxed();
            // Branch twice as likely as bottoming out early; the last
            // wrapped level can still only produce leaves.
            cur = Union::weighted(vec![(1, leaf.clone()), (2, deeper)]).boxed();
        }
        cur
    }
}

/// Reference-counted type-erased strategy (cloneable, cheap).
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Constant strategy.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Union::weighted(arms.into_iter().map(|s| (1, s)).collect())
    }

    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum covered above")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                (lo + rng.below((hi - lo) as u64) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy");
                (lo + rng.below((hi - lo + 1) as u64) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;
    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Vector strategy with a uniformly chosen length from `sizes`.
    pub fn vec<S: Strategy>(elem: S, sizes: Range<usize>) -> VecStrategy<S> {
        assert!(sizes.start < sizes.end, "empty size range");
        VecStrategy { elem, sizes }
    }

    pub struct VecStrategy<S> {
        elem: S,
        sizes: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.sizes.end - self.sizes.start) as u64;
            let len = self.sizes.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// The `proptest!` test-block macro: expands each `fn name(arg in strategy,
/// ...) { body }` into a `#[test]` that runs the body over `config.cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_cases(&config, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), __proptest_rng);)+
                $body
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Panic-based stand-in for proptest's `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Panic-based stand-in for proptest's `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3i32..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = Strategy::generate(&(-1i32..=1), &mut rng);
            assert!((-1..=1).contains(&w));
            let f = Strategy::generate(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let a = Strategy::generate(&(0u64..1000), &mut crate::TestRng::for_case("t", 3));
        let b = Strategy::generate(&(0u64..1000), &mut crate::TestRng::for_case("t", 3));
        assert_eq!(a, b);
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::TestRng::from_seed(1);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[Strategy::generate(&s, &mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone)]
        enum T {
            Leaf,
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = Just(T::Leaf).prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner)
                .prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
                .boxed()
        });
        let mut rng = crate::TestRng::from_seed(9);
        for _ in 0..200 {
            assert!(depth(&Strategy::generate(&s, &mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, doc comments, trailing comma.
        #[test]
        fn macro_generates_cases(
            a in 0usize..5,
            b in crate::collection::vec(0u64..10, 1..4),
            flip in any::<bool>(),
        ) {
            prop_assert!(a < 5);
            prop_assert!(!b.is_empty() && b.len() < 4);
            prop_assert_eq!(flip as u8 <= 1, true, "bool fits a bit: {}", flip);
        }
    }
}
