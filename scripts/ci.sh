#!/usr/bin/env bash
# Local CI gate: formatting, lints, the full test suite, a bench-smoke run
# that validates every emitted BENCH_*.json artifact, and the perf gate
# against the committed baselines.
#
# Run from anywhere; operates on the workspace this script lives in. Safe
# on a clean checkout: no pre-warmed target/ is assumed, CARGO_HOME
# overrides are honored, and no stage touches the network (all
# dependencies are vendored path crates).
set -euo pipefail

cd "$(dirname "$0")/.."

# The workspace has no registry dependencies; make any accidental
# network fetch an error instead of a hang.
export CARGO_NET_OFFLINE=true

echo "== toolchain =="
rustc --version
cargo --version
cargo fmt --version
cargo clippy --version
echo "CARGO_HOME=${CARGO_HOME:-<default>}"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q --workspace

echo "== build with instrumentation compiled out =="
# The pf-trace kill switch: without default features every probe must
# compile away, so the workspace has to keep building.
cargo build -q --workspace --no-default-features

echo "== bench smoke =="
# Run every fig/table binary on tiny grids; each emits a schema-versioned
# BENCH_<name>.json artifact which bench_check then validates.
SMOKE_DIR=target/bench-smoke
rm -rf "$SMOKE_DIR"
mkdir -p "$SMOKE_DIR"
cargo build -q --release -p pf-bench
BIN=target/release

echo "== pf-lint static verification =="
# The full pf-analyze v2 suite as a CI gate: P1+P2 kernel sets (halo fit,
# hazards, value lints, contract-seeded interval dataflow), their
# GPU-rescheduled forms, and the symbolic comm-protocol proof of the
# overlapped schedule over every divided-pattern plus the concrete
# 2/4/8-rank decompositions. Non-zero exit on any error-severity finding;
# LINT_report.json lands next to the bench artifacts for upload.
PF_BENCH_OUT_DIR="$SMOKE_DIR" "$BIN/pf-lint" > "$SMOKE_DIR/pf-lint.log" \
  || { echo "pf-lint found error-severity diagnostics:" >&2; \
       cat "$SMOKE_DIR/pf-lint.log" >&2; exit 1; }
grep -q '^pf-lint: OK' "$SMOKE_DIR/pf-lint.log" \
  || { echo "pf-lint did not complete" >&2; exit 1; }
test -s "$SMOKE_DIR/LINT_report.json" \
  || { echo "pf-lint emitted no LINT_report.json artifact" >&2; exit 1; }
# Tuned artifacts (table1) consult/fill the tuning cache; keep it hermetic
# to this run instead of whatever the host's temp dir has accumulated.
export PF_TUNE_CACHE_DIR="$SMOKE_DIR/tune-cache"
for b in table1 table2 fig2_left fig2_middle fig2_right fig3 gpu_approx ablation weak_scaling; do
  echo "-- $b"
  PF_BENCH_SMOKE=1 PF_BENCH_OUT_DIR="$SMOKE_DIR" "$BIN/$b" > "$SMOKE_DIR/$b.log"
done
"$BIN/bench_check" validate "$SMOKE_DIR"/BENCH_*.json
grep -q '"tuning"' "$SMOKE_DIR/BENCH_table1.json" \
  || { echo "table1 artifact carries no extra.tuning block" >&2; exit 1; }

echo "== bench smoke (vectorized engine) =="
# Rerun one binary with the strip-mined vectorized engine pinned, into its
# own directory, and validate: proves the ExecMode::Vectorized path emits
# schema-valid artifacts (mode + extra.analysis fields) end to end.
VEC_DIR="$SMOKE_DIR/vectorized"
mkdir -p "$VEC_DIR"
PF_BENCH_SMOKE=1 PF_BENCH_EXEC=vectorized PF_BENCH_OUT_DIR="$VEC_DIR" \
  "$BIN/table1" > "$VEC_DIR/table1.log"
"$BIN/bench_check" validate "$VEC_DIR"/BENCH_table1.json
grep -q '"mode": "vectorized"' "$VEC_DIR/BENCH_table1.json" \
  || { echo "vectorized smoke artifact carries no vectorized records" >&2; exit 1; }

echo "== native engine smoke =="
# Compile a small model's kernels to machine code (tape → Rust source →
# rustc cdylib → dlopen), run a few steps, and require bitwise identity
# with the serial interpreter plus a warm artifact-cache second pass. The
# example prints `native-smoke: SKIPPED` (and exits 0) on hosts whose
# toolchain cannot produce loadable cdylibs; that skip must stay loud.
NAT_DIR="$SMOKE_DIR/native"
mkdir -p "$NAT_DIR"
cargo build -q --release --example native_smoke
PF_NATIVE_CACHE_DIR="$NAT_DIR/cache" target/release/examples/native_smoke \
  | tee "$NAT_DIR/native_smoke.log"
if grep -q '^native-smoke: SKIPPED' "$NAT_DIR/native_smoke.log"; then
  echo "WARNING: native engine smoke SKIPPED — rustc cannot produce loadable cdylibs here;" >&2
  echo "WARNING: the ExecMode::Native path was NOT exercised by this CI run" >&2
else
  # The native engine also has to emit schema-valid bench artifacts with
  # native-mode records end to end.
  PF_BENCH_SMOKE=1 PF_BENCH_EXEC=native PF_BENCH_OUT_DIR="$NAT_DIR" \
    PF_NATIVE_CACHE_DIR="$NAT_DIR/cache" "$BIN/table1" > "$NAT_DIR/table1.log"
  "$BIN/bench_check" validate "$NAT_DIR"/BENCH_table1.json
  grep -q '"mode": "native"' "$NAT_DIR/BENCH_table1.json" \
    || { echo "native smoke artifact carries no native records" >&2; exit 1; }
fi

echo "== tune smoke =="
# The autotuning loop end to end on a disposable cache: cold consult
# misses and falls back static, an explicit tune prices/measures/persists,
# and the warm consult hits with ZERO measurements on the launch path —
# examples/tune_smoke.rs asserts all of that via tune.cache.{hit,miss}
# and tune.measurements counters and prints `tune-smoke: OK` at the end.
TUNE_DIR="$SMOKE_DIR/tune"
rm -rf "$TUNE_DIR"
mkdir -p "$TUNE_DIR"
cargo build -q --release --example tune_smoke
PF_TUNE_CACHE_DIR="$TUNE_DIR/cache" target/release/examples/tune_smoke \
  | tee "$TUNE_DIR/tune_smoke.log"
grep -q '^tune-smoke: OK' "$TUNE_DIR/tune_smoke.log" \
  || { echo "tune smoke did not complete" >&2; exit 1; }
# A second table1 pass against the cache the bench smoke above already
# filled: the warm-hit path must still emit a schema-valid extra.tuning
# block (bench_check validates the regret arithmetic field by field).
PF_BENCH_SMOKE=1 PF_BENCH_OUT_DIR="$TUNE_DIR" "$BIN/table1" > "$TUNE_DIR/table1.log"
"$BIN/bench_check" validate "$TUNE_DIR"/BENCH_table1.json

echo "== overlapped 2-rank smoke =="
# The table2 smoke above already drove the overlapped distributed schedule
# end to end (2 thread-backed ranks, blocking vs overlapped, the §4.3
# communication-hiding path); pin that it really happened and that the
# measurement landed in the artifact.
grep -q '"measured_overlap"' "$SMOKE_DIR/BENCH_table2.json" \
  || { echo "table2 artifact carries no measured_overlap record" >&2; exit 1; }
grep -q 'overlapped ' "$SMOKE_DIR/table2.log" \
  || { echo "table2 smoke never ran the overlapped schedule" >&2; exit 1; }

echo "== weak scaling smoke =="
# The weak_scaling binary above drove the real distributed runtime at
# 2→16 simulated ranks (full mode sweeps to 128) with batched halos and
# the overlapped schedule; pin that the artifact carries the scaling
# series the perf gate's efficiency check consumes.
grep -q '"weak_scaling"' "$SMOKE_DIR/BENCH_weak_scaling.json" \
  || { echo "weak_scaling artifact carries no extra.weak_scaling block" >&2; exit 1; }
grep -q 'ranks' "$SMOKE_DIR/weak_scaling.log" \
  || { echo "weak_scaling smoke printed no scaling table" >&2; exit 1; }

echo "== perf gate =="
# Reuses the smoke artifacts just produced (skip the second run). Smoke
# measurements on shared CI hosts carry sustained scheduling noise even
# with best-of-N sampling, so the gate runs widened here unless the
# caller pins a tolerance; dedicated perf hosts should invoke
# scripts/perf_gate.sh directly for the strict 15% default.
PF_PERF_GATE_TOL="${PF_PERF_GATE_TOL:-0.40}" \
  PF_PERF_GATE_REUSE="$SMOKE_DIR" scripts/perf_gate.sh

echo "CI OK"
