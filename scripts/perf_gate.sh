#!/usr/bin/env bash
# Performance regression gate.
#
# Runs a bench-smoke pass (tiny grids, PF_BENCH_SMOKE=1) and diffs the
# fresh BENCH_*.json artifacts against the committed baselines/ directory:
# a kernel whose measured MLUP/s falls more than the tolerance below its
# baseline fails the gate. Tolerance defaults to 15% and can be widened
# on noisy hosts with PF_PERF_GATE_TOL (e.g. PF_PERF_GATE_TOL=0.30).
#
# Set PF_PERF_GATE_REUSE=<dir> to diff an existing artifact directory
# instead of re-running the benches (scripts/ci.sh does this to avoid a
# duplicate smoke pass).
#
# Artifacts are validated against schema `pf-bench/6`, whose per-record
# execution modes include the compiled `native` engine. Native records in
# the committed baselines are only compared when the fresh run produced
# them too (hosts whose toolchain cannot load cdylibs skip the native
# engine and the gate reports those kernels as one-sided notes).
#
# The diff also gates autotuning quality: every `extra.tuning.kernels[]`
# entry of a fresh tuned artifact (table1) must keep its chosen-vs-best
# regret at or below PF_TUNE_GATE_TOL (default 0.10 = 10%). A tuner that
# picks a configuration leaving more than that on the table fails the
# gate even when raw throughput still clears its baseline floor.
#
# And it gates distributed scaling: every point of the weak_scaling
# artifact's `extra.weak_scaling.series` must keep its measured parallel
# efficiency within PF_SCALE_GATE_TOL (default 0.30) of the pf-cluster
# prediction for the same rank count. The measured side is
# oversubscription-corrected (the sweep time-shares up to 128 rank
# threads onto however many cores the host has), so what the gate sees
# is genuine runtime overhead, not host contention.
#
# To refresh the baselines after an intentional perf change:
#   PF_BENCH_SMOKE=1 PF_BENCH_OUT_DIR=baselines cargo run --release -p pf-bench --bin <each>
# and commit the result. The committed baselines are floored conservatively
# (per-kernel minimum over several runs, then scaled by 0.8): shared hosts
# show sustained multi-minute contention windows that slow every
# measurement ~40%, which best-of-N sampling inside one run cannot remove.
# A floor calibrated to the slowest observed window keeps the gate quiet
# under neighbor load while still catching real regressions.
set -euo pipefail

cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

BASELINES=baselines
if [ ! -d "$BASELINES" ]; then
  echo "perf_gate: no $BASELINES/ directory; nothing to gate against" >&2
  exit 1
fi

if [ -n "${PF_PERF_GATE_REUSE:-}" ]; then
  FRESH="$PF_PERF_GATE_REUSE"
  echo "perf_gate: reusing artifacts in $FRESH"
else
  FRESH=target/perf-gate
  rm -rf "$FRESH"
  mkdir -p "$FRESH"
  cargo build -q --release -p pf-bench
  # Hermetic tuning cache: the tuned artifacts must re-tune from cold here,
  # not inherit whatever the host's temp dir holds.
  export PF_TUNE_CACHE_DIR="$FRESH/tune-cache"
  for b in table1 table2 fig2_left fig2_middle fig2_right fig3 gpu_approx ablation weak_scaling; do
    echo "perf_gate: running $b (smoke)"
    PF_BENCH_SMOKE=1 PF_BENCH_OUT_DIR="$FRESH" "target/release/$b" > "$FRESH/$b.log"
  done
fi

cargo run -q --release -p pf-bench --bin bench_check -- diff "$BASELINES" "$FRESH"
