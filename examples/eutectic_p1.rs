//! Ternary eutectic directional solidification — the paper's **P1**
//! scenario (Fig. 4 left): three solid phases growing as lamellae from a
//! melt under a moving temperature gradient, the setup whose manual
//! optimization in Bauer et al. 2015 motivated the whole code-generation
//! pipeline.
//!
//! Run with: `cargo run --release --example eutectic_p1`

use pf_core::{generate_kernels, p1, BcKind, SimConfig, Simulation, Variant};
use pf_ir::GenOptions;

fn main() {
    let mut params = p1();
    // A thin quasi-2D slice keeps the example fast; production runs use
    // the distributed driver over billions of cells (see `scaling_study`).
    params.dim = 2;
    params.dt = 0.01;
    // Directional solidification: gradient along y (dim 1 is the last
    // spatial axis of a 2D run — we keep the frozen gradient on z=coord(2)
    // inactive and make the run isothermal-in-slice instead).
    params.temperature.gradient = 0.0;

    println!("generating P1 kernels (4 phases, 3 components)…");
    let kernels = generate_kernels(&params, &GenOptions::default());

    let shape = [48usize, 32, 1];
    let mut cfg = SimConfig::new(shape);
    cfg.bc = [BcKind::Periodic, BcKind::Neumann, BcKind::Periodic];
    cfg.phi_variant = Variant::Full;
    cfg.mu_variant = Variant::Split;
    let mut sim = Simulation::new(params.clone(), kernels, cfg);

    // Alternating lamellae of the three solid phases at the bottom,
    // liquid above — the classic eutectic starting condition.
    let lamella_width = 8usize;
    sim.init_phi(|x, y, _| {
        let mut v = vec![0.0; 4];
        let front = 0.5 * (1.0 - ((y as f64 - 8.0) / 2.0).tanh());
        let solid_phase = 1 + (x / lamella_width) % 3;
        v[0] = 1.0 - front;
        v[solid_phase] = front;
        v
    });
    // Slight supersaturation drives coupled growth.
    sim.init_mu(|_, _, _| vec![0.15, 0.15]);

    let fractions = |sim: &Simulation| -> Vec<f64> {
        (0..4)
            .map(|a| pf_core::analysis::phase_fraction(sim.phi(), a))
            .collect()
    };
    println!("initial phase fractions: {:?}", round3(&fractions(&sim)));
    for block in 1..=4 {
        sim.run_steps(75);
        let f = fractions(&sim);
        // Front position averaged over a few columns.
        let mut front = 0.0;
        let mut cnt = 0;
        for x in (0..shape[0]).step_by(7) {
            if let Some(p) = front_y(&sim, x) {
                front += p;
                cnt += 1;
            }
        }
        println!(
            "after {:4} steps: fractions {:?}, mean front y = {:.2}",
            block * 75,
            round3(&f),
            front / cnt.max(1) as f64
        );
    }
    println!("\nthe three solid fractions stay balanced (coupled eutectic growth)");
    println!("while the liquid fraction shrinks as the front advances.");
}

fn front_y(sim: &Simulation, x: usize) -> Option<f64> {
    // φ_liquid crosses 0.5 along +y.
    let phi = sim.phi();
    let ny = sim.cfg.shape[1];
    for y in 0..ny - 1 {
        let a = phi.get(0, x as isize, y as isize, 0);
        let b = phi.get(0, x as isize, y as isize + 1, 0);
        if (a - 0.5) * (b - 0.5) <= 0.0 && a != b {
            return Some(y as f64 + (0.5 - a) / (b - a));
        }
    }
    None
}

fn round3(v: &[f64]) -> Vec<f64> {
    v.iter().map(|x| (x * 1000.0).round() / 1000.0).collect()
}
