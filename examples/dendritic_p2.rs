//! Dendritic solidification of a binary alloy — the paper's **P2**
//! scenario (Fig. 4 middle/right): anisotropic gradient energy, misoriented
//! seeds competing under a temperature gradient, with Philox fluctuations
//! promoting side-branching.
//!
//! Run with: `cargo run --release --example dendritic_p2`

use pf_core::{generate_kernels, p2, BcKind, SimConfig, Simulation, Variant};
use pf_ir::GenOptions;

fn main() {
    let mut params = p2();
    params.dim = 2;
    params.dt = 0.01;
    params.temperature.gradient = 0.0; // isothermal slice for the demo
    params.fluctuation_amplitude = 5e-4;

    println!("generating P2 kernels (anisotropic gradient energy)…");
    let kernels = generate_kernels(&params, &GenOptions::default());

    let shape = [64usize, 48, 1];
    let mut cfg = SimConfig::new(shape);
    cfg.bc = [BcKind::Periodic, BcKind::Neumann, BcKind::Periodic];
    // The paper's variant study (Fig. 2 middle): for the anisotropic P2
    // model the split φ kernel is the right choice.
    cfg.phi_variant = Variant::Split;
    cfg.mu_variant = Variant::Split;
    let mut sim = Simulation::new(params.clone(), kernels, cfg);

    // Two seeds with different crystal orientations (phases 1 and 2 carry
    // orientations 0.35 and −0.6 rad in `p2()`), competing as they grow.
    let seeds = [(16.0f64, 6.0, 1usize), (48.0, 6.0, 2usize)];
    sim.init_phi(|x, y, _| {
        let mut v = vec![0.0; 3];
        let mut solid_total: f64 = 0.0;
        for (cx, cy, phase) in seeds {
            let d = (((x as f64 - cx).powi(2) + (y as f64 - cy).powi(2)).sqrt() - 4.0) / 2.0;
            let s = 0.5 * (1.0 - d.tanh());
            v[phase] += s;
            solid_total += s;
        }
        v[0] = (1.0 - solid_total).max(0.0);
        v
    });
    sim.init_mu(|_, _, _| vec![0.25]);

    for block in 1..=4 {
        sim.run_steps(60);
        let f1 = pf_core::analysis::phase_fraction(sim.phi(), 1);
        let f2 = pf_core::analysis::phase_fraction(sim.phi(), 2);
        // Tip height: highest y where any solid exceeds 0.5.
        let mut tip = 0usize;
        let phi = sim.phi();
        for y in 0..shape[1] {
            for x in 0..shape[0] {
                let s =
                    phi.get(1, x as isize, y as isize, 0) + phi.get(2, x as isize, y as isize, 0);
                if s > 0.5 {
                    tip = tip.max(y);
                }
            }
        }
        println!(
            "after {:3} steps: grain A {:.3}, grain B {:.3}, tip height {} cells",
            block * 60,
            f1,
            f2,
            tip
        );
    }
    println!("\nboth grains grow with anisotropy-selected directions; over longer");
    println!("runs the better-aligned orientation overgrows the other (Fig. 4).");
}
