//! CI tune-smoke stage: prove the autotuning loop end to end on a tiny
//! grid — cold-miss → measure → persist → warm-hit — and that the warm
//! launch path does **zero** measurement.
//!
//! Run with `PF_TUNE_CACHE_DIR` pointed at a disposable directory:
//!
//! ```text
//! PF_TUNE_CACHE_DIR=/tmp/tune cargo run --release --example tune_smoke
//! ```

use pf_core::{select_variants_tuned, tune_kernel_set, ChoiceSource, TuneCache, TuneOptions};
use pf_ir::GenOptions;
use pf_machine::skylake_8174;

fn counter(name: &str) -> u64 {
    pf_trace::snapshot()
        .counters
        .get(name)
        .map(|c| c.total)
        .unwrap_or(0)
}

fn main() {
    let cache = TuneCache::from_env().expect("PF_TUNE=off would make this smoke vacuous");
    println!("tune-smoke: cache dir {}", cache.dir().display());

    let sock = skylake_8174();
    let p = pf_core::p1();
    let ks = pf_core::generate_kernels(&p, &GenOptions::default());
    let shape = [8usize, 8, 8];
    let block = [8usize, 8, 8];
    let counters_live = pf_trace::enabled();

    // 1. Cold consult: no entries yet — static fallback, two misses.
    let miss0 = counter("tune.cache.miss");
    let cold = select_variants_tuned(&ks, &sock, sock.cores, block, shape);
    assert_eq!(
        cold.source,
        ChoiceSource::Static,
        "cold cache must fall back to the static heuristic"
    );
    assert!(
        cold.mode.is_none(),
        "static fallback keeps the shape default"
    );
    if counters_live {
        let miss1 = counter("tune.cache.miss");
        assert!(
            miss1 >= miss0 + 2,
            "cold consult must record two family misses: {miss0} -> {miss1}"
        );
    }
    println!(
        "tune-smoke: cold consult fell back to static (phi {:?}, mu {:?})",
        cold.phi, cold.mu
    );

    // 2. Explicit tuning: enumerate, price, shortlist, measure, persist.
    let reports = tune_kernel_set(&p, &ks, &sock, shape, Some(&cache), &TuneOptions::default());
    for r in &reports {
        println!(
            "tune-smoke: {} priced {} candidates, {} measurements; \
             winner {}@{} {:.1} MLUP/s (static {}@{} {:.1}, regret_static {:.1}%)",
            r.family.name(),
            r.candidates,
            r.measured,
            pf_core::variant_name(r.entry.variant),
            pf_core::mode_name(r.entry.mode),
            r.entry.measured_mlups,
            pf_core::variant_name(r.static_variant),
            pf_core::mode_name(r.static_mode),
            r.static_mlups,
            r.regret_static * 100.0,
        );
        assert!(r.best_mlups > 0.0 && r.measured > 0);
        assert!(
            r.regret_chosen <= 1e-12,
            "a fresh tuning run picks the measured argmax"
        );
    }

    // 3. Warm consult: both families hit; the launch path measures nothing.
    let hits0 = counter("tune.cache.hit");
    let meas0 = counter("tune.measurements");
    let warm = select_variants_tuned(&ks, &sock, sock.cores, block, shape);
    assert_eq!(
        warm.source,
        ChoiceSource::Tuned,
        "warm cache must produce a tuned choice"
    );
    let mode = warm.mode.expect("tuned choice pins the engine");
    if counters_live {
        let hits1 = counter("tune.cache.hit");
        let meas1 = counter("tune.measurements");
        assert!(
            hits1 >= hits0 + 2,
            "warm consult must record two family hits: {hits0} -> {hits1}"
        );
        assert_eq!(
            meas0, meas1,
            "the warm-hit launch path must do zero measurement"
        );
    }
    println!(
        "tune-smoke: warm consult hit (phi {:?}, mu {:?}, mode {})",
        warm.phi,
        warm.mu,
        pf_core::mode_name(mode)
    );
    println!("tune-smoke: OK");
}
