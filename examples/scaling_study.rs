//! Distributed run + cluster-scale projection: run the real multi-rank
//! simulation (thread-backed ranks with ghost-layer exchange) on this
//! machine, verify it against the single-block run, then project the same
//! workload to SuperMUC-NG scale with the cluster model — including what
//! periodic checkpointing would cost there.
//!
//! Run with: `cargo run --release --example scaling_study [FLAGS]`
//!
//! Flags:
//!   --checkpoint-dir <path>   write checkpoint sets under <path>
//!   --checkpoint-every <n>    write a set every n steps (default 0 = final only)
//!   --resume                  restart from the latest complete set in the dir

use pf_cluster::{
    checkpoint_bytes_per_rank, checkpoint_overhead_fraction, checkpoint_time, mlups_per_unit,
    StepWorkload,
};
use pf_core::dist::{run_distributed, CheckpointConfig, DistConfig};
use pf_core::{generate_kernels, BcKind, SimConfig, Simulation};
use pf_grid::{halo_bytes, CommOptions};
use pf_ir::GenOptions;
use pf_machine::supermuc_ng;
use std::path::PathBuf;

struct Cli {
    checkpoint_dir: Option<PathBuf>,
    checkpoint_every: u64,
    resume: bool,
}

const USAGE: &str = "usage: scaling_study [--checkpoint-dir <path>] \
     [--checkpoint-every <n>] [--resume]";

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        checkpoint_dir: None,
        checkpoint_every: 0,
        resume: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--checkpoint-dir" => match args.next() {
                Some(v) => cli.checkpoint_dir = Some(PathBuf::from(v)),
                None => usage_error("--checkpoint-dir needs a path"),
            },
            "--checkpoint-every" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage_error("--checkpoint-every needs a step count"));
                cli.checkpoint_every = v.parse().unwrap_or_else(|_| {
                    usage_error(&format!("--checkpoint-every: {v:?} is not a number"))
                });
            }
            "--resume" => cli.resume = true,
            other => usage_error(&format!("unknown flag {other:?}")),
        }
    }
    if cli.checkpoint_dir.is_none() && (cli.checkpoint_every > 0 || cli.resume) {
        usage_error("--checkpoint-every/--resume require --checkpoint-dir");
    }
    cli
}

fn main() {
    let cli = parse_cli();
    let mut params = pf_core::p1();
    params.phases = 2;
    params.components = 2;
    params.dim = 2;
    params.gamma = vec![vec![0.0, 0.4], vec![0.4, 0.0]];
    params.tau = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
    params.diffusivity = vec![1.0, 0.1];
    params.a_coeff = vec![vec![-0.5], vec![-0.5]];
    params.b_coeff = vec![vec![(0.0, 0.05)], vec![(-0.3, 0.05)]];
    params.c_coeff = vec![(0.01, 0.0), (0.01, 0.0)];
    params.orientation = vec![0.0, 0.0];
    params.fluctuation_amplitude = 0.0;
    let kernels = generate_kernels(&params, &GenOptions::default());

    // --- real distributed run on 4 ranks ---------------------------------
    let global = [32usize, 32, 1];
    let steps = 5;
    let init_phi = |x: i64, y: i64, _z: i64| {
        let d = (((x as f64 - 16.0).powi(2) + (y as f64 - 16.0).powi(2)).sqrt() - 6.0) / 3.0;
        let s = 0.5 * (1.0 - d.tanh());
        vec![1.0 - s, s]
    };
    let init_mu = |_: i64, _: i64, _: i64| vec![0.2];

    println!("running {steps} steps on 4 ranks (32x32 periodic domain)…");
    let mut dcfg = DistConfig::new(global, 4);
    if let Some(dir) = &cli.checkpoint_dir {
        println!(
            "checkpointing to {} (every {} steps{})",
            dir.display(),
            cli.checkpoint_every,
            if cli.resume { ", resuming" } else { "" }
        );
        dcfg.checkpoint = Some(
            CheckpointConfig::new(dir.clone())
                .every(cli.checkpoint_every)
                .resume(cli.resume),
        );
    }
    let solids = run_distributed(&params, &kernels, &dcfg, steps, init_phi, init_mu, |sim| {
        sim.phi().interior_sum(1)
    });
    let dist_total: f64 = solids.iter().sum();

    // Reference: the same run on a single block.
    let mut cfg = SimConfig::new(global);
    cfg.bc = [BcKind::Periodic; 3];
    let mut reference = Simulation::new(params.clone(), kernels.clone(), cfg);
    reference.init_phi(|x, y, z| init_phi(x as i64, y as i64, z as i64));
    reference.init_mu(|x, y, z| init_mu(x as i64, y as i64, z as i64));
    reference.run_steps(steps);
    let single_total = reference.phi().interior_sum(1);

    println!(
        "solid volume: distributed {dist_total:.12}, single block {single_total:.12} (difference {:.2e})",
        (dist_total - single_total).abs()
    );
    assert!(
        (dist_total - single_total).abs() < 1e-9,
        "distributed run must match the single-block run"
    );

    // --- projection to SuperMUC-NG scale ---------------------------------
    println!("\nprojecting the P1 production workload to SuperMUC-NG:");
    let cluster = supermuc_ng();
    let block = [60usize, 60, 60];
    let cells = 60u64.pow(3);
    // Per-core kernel rates at the measured ≈6.5 MLUP/s combined (Fig. 3).
    let w = StepWorkload {
        t_phi: cells as f64 / 16.5e6,
        t_mu: cells as f64 / 10.5e6,
        phi_halo_bytes: halo_bytes(block, 1, 4),
        mu_halo_bytes: halo_bytes(block, 1, 2),
        cells,
        mu_inner_fraction: 0.9,
    };
    let opts = CommOptions {
        overlap: true,
        gpudirect: false,
        ..CommOptions::default()
    };
    println!(
        "{:>10} {:>18} {:>22}",
        "cores", "MLUP/s per core", "aggregate GLUP/s"
    );
    for cores in [48usize, 3072, 49_152, 152_064] {
        let per = mlups_per_unit(&w, &cluster, opts, cores);
        println!("{cores:>10} {per:>18.2} {:>22.1}", per * cores as f64 / 1e3);
    }
    println!(
        "\nat half of SuperMUC-NG this is a ~{:.0} billion-cell domain advancing",
        152_064.0 * cells as f64 / 1e9
    );
    println!("several steps per second — the regime the paper's Fig. 4 simulations ran in.");

    // --- checkpoint cost at paper scale ----------------------------------
    let ranks = 152_064usize;
    let bytes = checkpoint_bytes_per_rank(block, params.phases, params.components - 1);
    let set_tb = ranks as f64 * bytes as f64 / 1e12;
    let t_set = checkpoint_time(&cluster, ranks, bytes);
    println!("\ncheckpoint cost on {} at {ranks} ranks:", cluster.name);
    println!(
        "  {:.1} MB per rank, {set_tb:.2} TB per set, {t_set:.1} s to drain at {:.0} GB/s",
        bytes as f64 / 1e6,
        cluster.fs_bw_gbs
    );
    println!("{:>12} {:>20}", "every", "overhead");
    for every in [10u64, 100, 1000] {
        let f = checkpoint_overhead_fraction(&w, &cluster, opts, ranks, bytes, every);
        println!("{every:>9} steps {:>19.2}%", f * 100.0);
    }
}
