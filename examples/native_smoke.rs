//! Native-engine smoke check for CI: generate a small 2-phase model,
//! compile its kernels to machine code through the native backend
//! (tape → Rust source → `rustc` cdylib → `dlopen`), run a few steps, and
//! require the result to match the serial interpreter **bitwise**. A
//! second native pass with the in-memory cache dropped must then be served
//! from the on-disk artifacts (`exec.native.compile_hit`).
//!
//! Exits 0 with a `native-smoke: SKIPPED` line when the host toolchain
//! cannot produce loadable cdylibs (scripts/ci.sh turns that into a loud
//! warning), and non-zero on any divergence.
//!
//! Run with: `cargo run --release --example native_smoke`

use pf_backend::ExecMode;
use pf_core::{generate_kernels, BcKind, KernelSet, ModelParams, SimConfig, Simulation, Variant};
use pf_ir::GenOptions;

const SHAPE: [usize; 3] = [24, 16, 1];
const STEPS: usize = 4;

fn model() -> ModelParams {
    let mut params = pf_core::p1();
    params.name = "native_smoke".into();
    params.phases = 2;
    params.components = 2;
    params.dim = 2;
    params.gamma = vec![vec![0.0, 0.4], vec![0.4, 0.0]];
    params.tau = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
    params.diffusivity = vec![1.0, 0.1];
    params.a_coeff = vec![vec![-0.5], vec![-0.5]];
    params.b_coeff = vec![vec![(0.0, 0.05)], vec![(-0.3, 0.05)]];
    params.c_coeff = vec![(0.01, 0.0), (0.01, 0.0)];
    params.orientation = vec![0.0, 0.0];
    params.anisotropy = None;
    params.temperature.gradient = 0.0;
    // Philox noise on: the native code carries its own inlined generator
    // and must reproduce the interpreter's stream exactly.
    params.fluctuation_amplitude = 1e-3;
    params.dt = 0.01;
    params
}

// One shared kernel set: regenerating per run would mint fresh field ids
// and with them fresh structural hashes, defeating the artifact cache this
// smoke is checking.
fn run(params: &ModelParams, kernels: &KernelSet, mode: ExecMode) -> Simulation {
    let mut cfg = SimConfig::new(SHAPE);
    cfg.bc = [BcKind::Periodic; 3];
    cfg.phi_variant = Variant::Full;
    cfg.mu_variant = Variant::Split;
    cfg.mode = mode;
    let mut sim = Simulation::new(params.clone(), kernels.clone(), cfg);
    sim.init_phi(|x, y, _| {
        let d = (((x as f64 - 12.0).powi(2) + (y as f64 - 8.0).powi(2)).sqrt() - 4.0) / 2.0;
        let solid = 0.5 * (1.0 - d.tanh());
        vec![1.0 - solid, solid]
    });
    sim.init_mu(|_, _, _| vec![0.3]);
    sim.run_steps(STEPS);
    sim
}

fn main() {
    if !pf_backend::native_available() {
        println!(
            "native-smoke: SKIPPED — rustc cannot produce loadable cdylibs on this host \
             (cache dir {})",
            pf_backend::native_cache_dir().display()
        );
        return;
    }

    let params = model();
    let kernels = generate_kernels(&params, &GenOptions::default());
    let serial = run(&params, &kernels, ExecMode::Serial);
    let native = run(&params, &kernels, ExecMode::Native);
    let dphi = serial.phi().max_abs_diff(native.phi());
    let dmu = serial.mu().max_abs_diff(native.mu());
    if dphi != 0.0 || dmu != 0.0 {
        eprintln!("native-smoke: FAIL — native diverged from serial (φ {dphi:e}, µ {dmu:e})");
        std::process::exit(1);
    }
    println!(
        "native-smoke: native == serial bitwise after {STEPS} steps on {}x{}x{}",
        SHAPE[0], SHAPE[1], SHAPE[2]
    );

    // Second pass: drop the resolved function pointers so every kernel has
    // to come back from the on-disk artifact cache.
    pf_backend::clear_memory_cache();
    let cached = run(&params, &kernels, ExecMode::Native);
    if serial.phi().max_abs_diff(cached.phi()) != 0.0 {
        eprintln!("native-smoke: FAIL — disk-cached artifacts diverged from serial");
        std::process::exit(1);
    }
    if pf_trace::enabled() {
        let hits = pf_trace::counter("exec.native.compile_hit").value();
        let misses = pf_trace::counter("exec.native.compile_miss").value();
        if hits == 0 {
            eprintln!(
                "native-smoke: FAIL — second pass never hit the artifact cache \
                 (compile_hit {hits}, compile_miss {misses})"
            );
            std::process::exit(1);
        }
        println!(
            "native-smoke: artifact cache serving (compile_miss {misses}, compile_hit {hits})"
        );
    }
    println!(
        "native-smoke: OK (artifacts in {})",
        pf_backend::native_cache_dir().display()
    );
}
