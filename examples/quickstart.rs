//! Quickstart: from an energy functional to a running phase-field
//! simulation in ~60 lines of user code.
//!
//! This mirrors the paper's user journey (§3): pick a model
//! parameterization, let the pipeline derive the PDEs (variational
//! derivatives), discretize them, generate optimized kernels, and
//! time-step a melting/solidification front — all without writing a single
//! stencil by hand.
//!
//! Run with: `cargo run --release --example quickstart`

use pf_core::{generate_kernels, BcKind, SimConfig, Simulation, Variant};
use pf_ir::GenOptions;
use pf_perfmodel::{census, CountScope};

fn main() {
    // 1. A small 2-phase / 2-component model (see `pf_core::p1()` for the
    //    paper's full 4-phase ternary eutectic setup).
    let mut params = pf_core::p1();
    params.name = "quickstart".into();
    params.phases = 2;
    params.components = 2;
    params.dim = 2;
    params.gamma = vec![vec![0.0, 0.4], vec![0.4, 0.0]];
    params.tau = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
    params.diffusivity = vec![1.0, 0.1];
    params.a_coeff = vec![vec![-0.5], vec![-0.5]];
    params.b_coeff = vec![vec![(0.0, 0.05)], vec![(-0.3, 0.05)]];
    params.c_coeff = vec![(0.01, 0.0), (0.01, 0.0)];
    params.orientation = vec![0.0, 0.0];
    params.anisotropy = None;
    params.temperature.gradient = 0.0;
    params.fluctuation_amplitude = 0.0;
    params.dt = 0.01;

    // 2. Generate the compute kernels (energy functional → variational
    //    derivative → finite differences → optimized tapes).
    let kernels = generate_kernels(&params, &GenOptions::default());
    let c = census(&kernels.phi_full, CountScope::PerCell);
    println!(
        "generated φ kernel: {} instructions/cell ({} normalized FLOPs), µ kernel: {}",
        kernels.phi_full.instrs.len(),
        c.normalized_flops(),
        kernels.mu_full.instrs.len()
    );

    // 3. Set up a 64×64 block with a solid seed in an undercooled melt.
    let mut cfg = SimConfig::new([64, 64, 1]);
    cfg.bc = [BcKind::Periodic; 3];
    cfg.phi_variant = Variant::Full;
    cfg.mu_variant = Variant::Split;
    let mut sim = Simulation::new(params, kernels, cfg);
    sim.init_phi(|x, y, _| {
        let d = (((x as f64 - 32.0).powi(2) + (y as f64 - 32.0).powi(2)).sqrt() - 10.0) / 4.0;
        let solid = 0.5 * (1.0 - d.tanh());
        vec![1.0 - solid, solid]
    });
    sim.init_mu(|_, _, _| vec![0.3]); // supersaturated melt drives growth

    // 4. Time-step and watch the seed grow.
    let mut r0 = pf_core::analysis::disk_radius(sim.phi(), 1);
    println!("step      0: seed radius {r0:6.2} cells");
    for block in 1..=5 {
        sim.run_steps(100);
        let r = pf_core::analysis::disk_radius(sim.phi(), 1);
        println!(
            "step {:6}: seed radius {r:6.2} cells ({})",
            block * 100,
            if r > r0 { "growing" } else { "shrinking" }
        );
        r0 = r;
    }
    let fraction = pf_core::analysis::phase_fraction(sim.phi(), 1);
    println!("final solid fraction: {:.1}%", fraction * 100.0);

    // A quick look at the microstructure (see `pf_core::io::write_vtk` for
    // ParaView output of production runs).
    println!("\nfinal solid phase (z = 0 slice):");
    print!("{}", pf_core::io::ascii_slice(sim.phi(), 1, 0));
}
