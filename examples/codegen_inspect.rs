//! Inspect every layer of the code-generation pipeline (Fig. 1 of the
//! paper): energy functional → PDEs (variational derivatives) → stencils →
//! IR → generated C and CUDA source.
//!
//! Run with: `cargo run --release --example codegen_inspect`

use pf_backend::{emit_c, emit_cuda, ThreadMapping};
use pf_core::{build_model, temperature_expr};
use pf_ir::{generate, GenOptions};
use pf_perfmodel::{census, CountScope};
use pf_stencil::{discretize_full, Discretization, StencilKernel};

fn main() {
    // A compact 2-phase model so the printed expressions stay readable.
    let mut p = pf_core::p1();
    p.phases = 2;
    p.components = 2;
    p.dim = 2;
    p.gamma = vec![vec![0.0, 0.4], vec![0.4, 0.0]];
    p.tau = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
    p.diffusivity = vec![1.0, 0.1];
    p.a_coeff = vec![vec![-0.5], vec![-0.5]];
    p.b_coeff = vec![vec![(0.0, 0.05)], vec![(-0.3, 0.05)]];
    p.c_coeff = vec![(0.01, 0.0), (0.01, 0.0)];
    p.orientation = vec![0.0, 0.0];
    p.antitrapping = false; // keep the µ PDE printable

    println!("========== layer 1: energy functional ==========");
    let m = build_model(&p);
    println!("T(z,t) = {}", temperature_expr(&p));
    println!(
        "energy density Ψ: {} unique nodes (printing the first 400 chars)",
        m.energy_density.dag_size()
    );
    let e = format!("{}", m.energy_density);
    println!("{}…\n", &e[..e.len().min(400)]);

    println!("========== layer 2: PDEs (automatic variational derivatives) ==========");
    let (dst, rhs) = &m.phi_updates[1];
    println!("φ_1 update target: {dst:?}");
    let r = format!("{rhs}");
    println!(
        "rhs ({} unique nodes): {}…\n",
        rhs.dag_size(),
        &r[..r.len().min(400)]
    );

    println!("========== layer 3: stencils (finite differences) ==========");
    let disc = Discretization::new(p.dim, [p.dx; 3]);
    let assignments = discretize_full(&disc, &m.mu_updates);
    let k = StencilKernel::new("mu_full", assignments);
    println!(
        "µ kernel reads {} distinct accesses, radius {:?}, stencil {} on φ_src",
        k.reads().len(),
        k.read_radius(),
        k.stencil_designation(m.fields.phi_src)
    );

    println!("\n========== layer 4: intermediate representation ==========");
    let tape = generate(&k, &GenOptions::default());
    let c = census(&tape, CountScope::PerCell);
    println!(
        "tape: {} instructions, loop order {:?}, per-cell: {} loads, {} adds, {} muls, {} divs ({} normalized FLOPs)",
        tape.instrs.len(),
        tape.loop_order,
        c.loads,
        c.adds,
        c.muls,
        c.divs,
        c.normalized_flops()
    );
    println!("first instructions:");
    for (i, op) in tape.instrs.iter().take(8).enumerate() {
        println!("  r{i} = {op:?}   (level {})", tape.levels[i]);
    }

    println!("\n========== layer 5: generated C (excerpt) ==========");
    let c_src = emit_c(&tape);
    for line in c_src.lines().take(24) {
        println!("{line}");
    }
    println!("… ({} lines total)", c_src.lines().count());

    println!("\n========== layer 5: generated CUDA (excerpt) ==========");
    let cu = emit_cuda(
        &tape,
        ThreadMapping::Block3D {
            bx: 32,
            by: 4,
            bz: 2,
        },
    );
    for line in cu.lines().take(16) {
        println!("{line}");
    }
    println!("… ({} lines total)", cu.lines().count());
}
