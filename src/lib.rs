//! `pf-suite` — umbrella crate for the phase-field code-generation
//! reproduction (SC '19, Bauer et al.).
//!
//! Re-exports the whole stack under one roof; the runnable examples
//! (`examples/`) and cross-crate integration tests (`tests/`) live here.
//!
//! Layer map (top of Fig. 1 → bottom):
//!
//! | crate          | role |
//! |----------------|------|
//! | [`core`]       | energy functional & PDE layers, P1/P2 models, drivers |
//! | [`symbolic`]   | computer algebra: expressions, variational derivatives, CSE |
//! | [`stencil`]    | finite-difference discretization, split kernels |
//! | [`ir`]         | SSA tape, LICM, scheduling, rematerialization |
//! | [`backend`]    | native executor, C & CUDA emitters |
//! | [`fields`]     | ghosted array storage |
//! | [`grid`]       | block decomposition, rank communication, halo exchange |
//! | [`rng`]        | Philox 4x32-10 counter-based RNG |
//! | [`perfmodel`]  | op census, layer conditions, cache sim, ECM, GPU model |
//! | [`machine`]    | SuperMUC-NG / Piz Daint hardware descriptions |
//! | [`cluster`]    | cluster-scale timestep pricing |

pub use pf_backend as backend;
pub use pf_cluster as cluster;
pub use pf_core as core;
pub use pf_fields as fields;
pub use pf_grid as grid;
pub use pf_ir as ir;
pub use pf_machine as machine;
pub use pf_perfmodel as perfmodel;
pub use pf_rng as rng;
pub use pf_stencil as stencil;
pub use pf_symbolic as symbolic;
